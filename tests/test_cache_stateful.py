"""Model-based (stateful) testing of the instance cache.

Drives :class:`~repro.serving.cache.InstanceCache` through random
admit/touch/evict sequences while maintaining a reference model, checking
the invariants that the serving system's correctness rests on:

* memory accounting equals the sum of resident instances' bytes;
* residency flags agree with the cache's view;
* LRU evicts exactly the least-recently-used resident instance;
* capacity is never exceeded.
"""

import dataclasses

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.hw.memory import GPUMemory
from repro.serving.cache import InstanceCache


@dataclasses.dataclass
class FakeInstance:
    """Minimal stand-in exposing what the cache needs."""

    name: str
    gpu_bytes: int
    resident: bool = False


CAPACITY = 1000


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.memory = GPUMemory(CAPACITY, workspace_bytes=0)
        self.cache = InstanceCache(self.memory, policy="lru")
        self.instances = {
            f"i{k}": FakeInstance(name=f"i{k}", gpu_bytes=100 + 30 * (k % 5))
            for k in range(12)
        }
        self.reference_order: list[str] = []  # LRU first

    # -- rules ------------------------------------------------------------

    @rule(k=st.integers(min_value=0, max_value=11))
    def admit_or_touch(self, k):
        instance = self.instances[f"i{k}"]
        if instance.name in self.reference_order:
            self.cache.touch(instance)
            self.reference_order.remove(instance.name)
            self.reference_order.append(instance.name)
        else:
            evicted = self.cache.admit(instance)
            expected = []
            free = CAPACITY - sum(self.instances[n].gpu_bytes
                                  for n in self.reference_order)
            while free < instance.gpu_bytes:
                victim = self.reference_order.pop(0)
                expected.append(victim)
                free += self.instances[victim].gpu_bytes
            assert [e.name for e in evicted] == expected
            self.reference_order.append(instance.name)

    @precondition(lambda self: self.reference_order)
    @rule(data=st.data())
    def explicit_evict(self, data):
        name = data.draw(st.sampled_from(self.reference_order))
        self.cache.evict(self.instances[name])
        self.reference_order.remove(name)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def memory_matches_residents(self):
        expected = sum(self.instances[n].gpu_bytes
                       for n in self.reference_order)
        assert self.memory.used_bytes == expected
        assert self.memory.used_bytes <= CAPACITY

    @invariant()
    def residency_flags_agree(self):
        for name, instance in self.instances.items():
            assert instance.resident == (name in self.reference_order)

    @invariant()
    def lru_order_agrees(self):
        assert list(self.cache.resident_names) == self.reference_order


TestCacheStateful = CacheMachine.TestCase
TestCacheStateful.settings = settings(max_examples=40,
                                      stateful_step_count=60,
                                      deadline=None)


def test_fake_instance_compatible_with_cache():
    """The stand-in honours the ModelInstance interface the cache uses."""
    memory = GPUMemory(500, workspace_bytes=0)
    cache = InstanceCache(memory)
    instance = FakeInstance(name="x", gpu_bytes=200)
    cache.admit(instance)
    assert instance.resident
    cache.evict(instance)
    assert not instance.resident
    with pytest.raises(KeyError):
        cache.touch(instance)
