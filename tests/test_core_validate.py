"""Tests for deployment-time plan validation."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.core.validate import PlanValidationError, validate_plan_on_machine
from repro.errors import TopologyError
from repro.hw.machine import Machine
from repro.hw.specs import a5000x2, dgx1_v100, p3_8xlarge
from repro.models import build_model
from repro.models.graph import ModelSpec
from repro.models.layers import linear
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture
def machine():
    return Machine(Simulator(), p3_8xlarge())


class TestValidation:
    def test_valid_plans_pass_on_every_primary(self, planner, machine):
        for strategy in Strategy:
            plan = planner.plan(build_model("bert-base"), strategy)
            validate_plan_on_machine(plan, machine)

    def test_oversized_model_rejected(self, planner, machine):
        huge = ModelSpec(
            name="huge",
            layers=tuple(linear(f"fc{i}", 16384, 16384) for i in range(12)),
            seq_len=1, family="custom")
        plan = planner.plan(huge, Strategy.PIPESWITCH)
        with pytest.raises(PlanValidationError, match="resident"):
            validate_plan_on_machine(plan, machine)

    def test_unknown_primary_rejected(self, planner, machine):
        plan = planner.plan(build_model("resnet50"), Strategy.PIPESWITCH)
        with pytest.raises(TopologyError):
            validate_plan_on_machine(plan, machine, primaries=[9])

    def test_too_many_partitions_for_machine(self):
        """A 3-way DGX-1 plan cannot deploy on the 2-switch p3.8xlarge."""
        dgx_planner = DeepPlan(dgx1_v100(), noise=0.0)
        plan = dgx_planner.plan(build_model("bert-large"), Strategy.PT,
                                num_gpus=3)
        p3 = Machine(Simulator(), p3_8xlarge())
        with pytest.raises(PlanValidationError, match="at most"):
            validate_plan_on_machine(plan, p3)

    def test_pt_plan_valid_on_a5000(self, planner):
        a5000_planner = DeepPlan(a5000x2(), noise=0.0)
        plan = a5000_planner.plan(build_model("bert-base"), Strategy.PT)
        machine = Machine(Simulator(), a5000x2())
        validate_plan_on_machine(plan, machine)

    def test_staging_overflow_rejected(self, planner):
        """A secondary partition bigger than the workspace cannot stage."""
        plan = planner.plan(build_model("bert-large"), Strategy.PT)
        machine = Machine(Simulator(), p3_8xlarge(),
                          workspace_bytes=256 * 1024 * 1024)
        with pytest.raises(PlanValidationError, match="staging"):
            validate_plan_on_machine(plan, machine)

    def test_server_deploy_uses_validation(self, planner):
        from repro.errors import WorkloadError
        from repro.serving import InferenceServer, ServerConfig

        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig())
        huge = ModelSpec(
            name="huge",
            layers=tuple(linear(f"fc{i}", 16384, 16384) for i in range(12)),
            seq_len=1, family="custom")
        with pytest.raises((PlanValidationError, WorkloadError)):
            server.deploy([(huge, 1)])
