"""Differential tests for the simulation fast path.

The fast path (incremental fair-share rebalancing in
:mod:`repro.simkit.links`, the memoized Algorithm-1 timeline in
:mod:`repro.core.stall`) exists purely to cut wall-clock time; these
tests pin its defining property — same results as the reference
implementations, to the bit where the issue demands it.

* ``TestIncrementalFairShare`` replays seeded random flow topologies and,
  at every rate assignment, compares the incremental allocator's rates
  against :meth:`FlowNetwork.reference_fair_rates` (the original
  whole-network progressive filling).  ``--full-seeds`` sweeps 200
  topologies; the default runs the quick subset.
* ``TestTimelineMemoEquivalence`` runs Algorithm 1 with and without the
  memoized timeline over seeded random cost tables and requires
  identical decisions and bit-identical latency predictions.
"""

import random

import pytest

from repro.core.plan import ExecMethod, Partition
from repro.core.planner import LayerExecutionPlanner
from repro.core.stall import TimelineMemo, compute_timeline
from repro.models.costs import LayerCosts
from repro.models.layers import LayerKind
from repro.simkit import FlowNetwork, Link, Simulator

REL_TOL = 1e-9


class _RateAuditor:
    """FlowNetwork observer comparing every assignment to the reference."""

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self.comparisons = 0
        self.worst = 0.0

    def on_flow_started(self, flow) -> None:
        pass

    def on_flow_completed(self, flow) -> None:
        pass

    def on_rates_assigned(self, network: FlowNetwork) -> None:
        reference = network.reference_fair_rates()
        assert set(reference) == set(network.active_flows)
        for flow, expected in reference.items():
            error = abs(flow.rate - expected)
            bound = REL_TOL * max(abs(expected), abs(flow.rate), 1.0)
            assert error <= bound, (
                f"flow {flow.id} rate {flow.rate!r} diverged from the "
                f"reference fill {expected!r}")
            self.worst = max(self.worst, error)
            self.comparisons += 1


def _random_topology(rng: random.Random) -> list[Link]:
    return [Link(f"link{i}", rng.uniform(1e9, 25e9))
            for i in range(rng.randint(2, 7))]


def _driver(sim: Simulator, network: FlowNetwork, links: list[Link],
            rng: random.Random, transfers: int):
    """One traffic source: random paths, sizes, weights and caps."""
    for _ in range(transfers):
        path = rng.sample(links, rng.randint(1, min(3, len(links))))
        nbytes = rng.uniform(1e5, 5e7)
        weight = rng.choice((1.0, 1.0, 1.0, 0.4, 2.0))
        max_rate = (rng.uniform(5e8, 2e9) if rng.random() < 0.3 else None)
        done = network.transfer(path, nbytes, max_rate=max_rate,
                                weight=weight)
        if rng.random() < 0.5:
            yield done  # wait it out: flows complete while others run
        else:
            yield sim.timeout(rng.uniform(0.0, 0.02))  # overlap


class TestIncrementalFairShare:
    def test_incremental_matches_reference_fill(self, flow_seed):
        rng = random.Random(0xF10 + flow_seed)
        sim = Simulator()
        network = FlowNetwork(sim)
        auditor = _RateAuditor(network)
        network.observer = auditor
        links = _random_topology(rng)
        for k in range(rng.randint(2, 6)):
            sim.process(
                _driver(sim, network, links,
                        random.Random(flow_seed * 1000 + k),
                        transfers=rng.randint(3, 10)),
                name=f"driver{k}")
        sim.run()
        assert not network.active_flows, "every flow should have drained"
        assert auditor.comparisons > 0
        assert auditor.worst <= REL_TOL * 25e9

    def test_slow_path_env_produces_same_rates(self, flow_seed):
        """The from-scratch slow path re-fills every component on every
        change; rates it assigns must match the incremental ones."""
        if flow_seed >= 10:  # a spot check, not a second full sweep
            pytest.skip("slow-path cross-check runs on the first seeds")

        def collect(incremental: bool) -> list[tuple[int, float]]:
            rng = random.Random(0xF10 + flow_seed)
            sim = Simulator()
            network = FlowNetwork(sim, incremental=incremental)
            observed: list[tuple[int, float]] = []
            # Flow ids count globally across networks; number the flows
            # per run so the two traces are comparable.
            local: dict[int, int] = {}

            class Recorder:
                def on_flow_started(self, flow) -> None:
                    local[flow.id] = len(local)

                def on_flow_completed(self, flow) -> None:
                    observed.append((local[flow.id], sim.now))

                def on_rates_assigned(self, net) -> None:
                    observed.extend(sorted(
                        (local[f.id], f.rate) for f in net.active_flows))

            network.observer = Recorder()
            links = _random_topology(rng)
            for k in range(rng.randint(2, 6)):
                sim.process(
                    _driver(sim, network, links,
                            random.Random(flow_seed * 1000 + k),
                            transfers=rng.randint(3, 10)),
                    name=f"driver{k}")
            sim.run()
            return observed

        assert collect(incremental=True) == collect(incremental=False)


class TestVectorizedKernel:
    """The numpy kernel (``_fill_vec``) against the reference fill.

    Real serving components rarely reach ``_VEC_MIN_FLOWS`` flows, so the
    seeded sweep above exercises the scalar kernel almost exclusively;
    these tests force the vectorized path explicitly.
    """

    def test_forced_vectorized_kernel_matches_reference(self, flow_seed,
                                                        monkeypatch):
        """The seeded differential sweep with the dispatch threshold
        dropped to 2: every multi-flow component runs the numpy kernel."""
        import repro.simkit.links as links_module

        monkeypatch.setattr(links_module, "_VEC_MIN_FLOWS", 2)
        calls = []
        original = FlowNetwork._fill_vec

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FlowNetwork, "_fill_vec", counting)
        rng = random.Random(0xF10 + flow_seed)
        sim = Simulator()
        network = FlowNetwork(sim, incremental=True)
        auditor = _RateAuditor(network)
        network.observer = auditor
        links = _random_topology(rng)
        for k in range(rng.randint(2, 6)):
            sim.process(
                _driver(sim, network, links,
                        random.Random(flow_seed * 1000 + k),
                        transfers=rng.randint(3, 10)),
                name=f"driver{k}")
        sim.run()
        assert not network.active_flows
        assert auditor.comparisons > 0
        assert calls, "the vectorized kernel never ran"

    def test_large_component_matches_reference(self):
        """A component big enough to cross ``_VEC_MIN_FLOWS`` naturally,
        with mixed weights and caps so the non-uniform (memo-bypassing)
        kernel path runs on every rebalance."""
        rng = random.Random(0xB16)
        sim = Simulator()
        network = FlowNetwork(sim, incremental=True)
        auditor = _RateAuditor(network)
        network.observer = auditor
        lanes = [Link(f"lane{i}", rng.uniform(4e9, 16e9)) for i in range(8)]
        uplink = Link("uplink", 12e9)
        flows = []
        for i in range(64):
            flows.append(network.transfer(
                [lanes[i % 8], uplink], rng.uniform(1e6, 5e7),
                weight=rng.choice((0.5, 1.0, 2.0)),
                max_rate=(rng.uniform(5e8, 2e9)
                          if i % 3 == 0 else None)))
        sim.run()
        assert all(flow.triggered for flow in flows)
        assert auditor.comparisons >= 64
        assert auditor.worst <= REL_TOL * 16e9


def _random_costs(rng: random.Random, n: int) -> list[LayerCosts]:
    costs = []
    for i in range(n):
        loadable = rng.random() < 0.8
        inmem = rng.uniform(1e-5, 8e-3)
        if loadable:
            load = rng.uniform(1e-5, 2e-2)
            dha = inmem + rng.uniform(0.0, 2e-2)
            nbytes = max(1, int(load * 12e9))
        else:
            load, dha, nbytes = 0.0, inmem, 0
        costs.append(LayerCosts(
            name=f"l{i}", kind=LayerKind.LINEAR, load_time=load,
            exec_inmem=inmem, exec_dha=dha, load_pcie_bytes=nbytes,
            dha_pcie_bytes=nbytes))
    return costs


class TestTimelineMemoEquivalence:
    def _partitions(self, rng: random.Random, n: int):
        if n < 4 or rng.random() < 0.5:
            return (Partition(index=0, start=0, stop=n),), None
        split = rng.randint(2, n - 1)
        return ((Partition(index=0, start=0, stop=split),
                 Partition(index=1, start=split, stop=n)),
                lambda nbytes: nbytes / 48e9)

    def test_memoized_algorithm1_is_bit_identical(self, property_seed):
        rng = random.Random(0xA160 + property_seed)
        costs = _random_costs(rng, rng.randint(2, 24))
        partitions, nvlink = self._partitions(rng, len(costs))
        planner = LayerExecutionPlanner(costs, partitions, nvlink)
        memoized = planner.plan(memoize=True)
        reference = planner.plan(memoize=False)
        assert memoized == reference
        # Same decisions must mean bit-identical predicted timings too.
        fast = TimelineMemo(costs, memoized, partitions, nvlink)
        slow = compute_timeline(costs, reference, partitions, nvlink)
        assert fast.total_latency == slow.total_latency
        for i in range(len(costs)):
            assert fast.stall_of(i) == slow.stall_of(i)

    def test_memo_refresh_tracks_single_conversions(self, property_seed):
        """Converting layers one at a time and refreshing from the change
        point must equal a from-scratch timeline after every step."""
        rng = random.Random(0x5EED + property_seed)
        costs = _random_costs(rng, rng.randint(2, 16))
        decisions = [ExecMethod.LOAD if c.load_pcie_bytes > 0
                     else ExecMethod.DHA for c in costs]
        memo = TimelineMemo(costs, decisions)
        convertible = [i for i, c in enumerate(costs)
                       if c.load_pcie_bytes > 0]
        rng.shuffle(convertible)
        for i in convertible[:6]:
            decisions[i] = ExecMethod.DHA
            memo.refresh(decisions, i)
            scratch = compute_timeline(costs, decisions)
            assert memo.total_latency == scratch.total_latency
            for j in range(len(costs)):
                assert memo.stall_of(j) == scratch.stall_of(j)
