"""Tests for eviction policies, homing policies, and undeploy."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.hw.memory import GPUMemory
from repro.hw.specs import dgx1_v100, p3_8xlarge
from repro.models import build_model
from repro.serving import InferenceServer, ServerConfig
from repro.serving.cache import InstanceCache
from repro.serving.instance import ModelInstance
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def plan():
    return DeepPlan(p3_8xlarge(), noise=0.0).plan(build_model("bert-base"),
                                                  Strategy.PIPESWITCH)


def make_cache(plan, policy, slots=3):
    memory = GPUMemory(capacity_bytes=plan.gpu_resident_bytes * slots + 1024,
                       workspace_bytes=0)
    return InstanceCache(memory, policy=policy)


def instances(plan, n):
    return [ModelInstance(name=f"bert#{k}", plan=plan, home_gpu=0)
            for k in range(n)]


class TestEvictionPolicies:
    def test_unknown_policy_rejected(self, plan):
        with pytest.raises(ValueError, match="options"):
            make_cache(plan, "clairvoyant")

    def test_lfu_evicts_least_frequent(self, plan):
        cache = make_cache(plan, "lfu")
        group = instances(plan, 4)
        for instance in group[:3]:
            cache.admit(instance)
        for _ in range(5):
            cache.touch(group[0])
        cache.touch(group[2])
        evicted = cache.admit(group[3])
        assert [e.name for e in evicted] == ["bert#1"]

    def test_fifo_ignores_touches(self, plan):
        cache = make_cache(plan, "fifo")
        group = instances(plan, 4)
        for instance in group[:3]:
            cache.admit(instance)
        cache.touch(group[0])  # would save it under LRU
        evicted = cache.admit(group[3])
        assert [e.name for e in evicted] == ["bert#0"]

    def test_lru_respects_touches(self, plan):
        cache = make_cache(plan, "lru")
        group = instances(plan, 4)
        for instance in group[:3]:
            cache.admit(instance)
        cache.touch(group[0])
        evicted = cache.admit(group[3])
        assert [e.name for e in evicted] == ["bert#1"]

    def test_random_is_seeded_and_valid(self, plan):
        def evicted_with_seed(seed):
            memory = GPUMemory(plan.gpu_resident_bytes * 3 + 1024,
                               workspace_bytes=0)
            cache = InstanceCache(memory, policy="random", seed=seed)
            group = instances(plan, 4)
            for instance in group[:3]:
                cache.admit(instance)
            return [e.name for e in cache.admit(group[3])]

        assert evicted_with_seed(1) == evicted_with_seed(1)
        names = {tuple(evicted_with_seed(s)) for s in range(8)}
        assert len(names) > 1  # different seeds pick different victims


class TestHomingPolicies:
    def test_round_robin_balances_counts(self):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig())
        homes = [i.home_gpu for i in server.deploy(
            [(build_model("bert-base"), 8)])]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_least_loaded_accounts_for_model_size(self):
        """Mixing large and small models, least-loaded balances bytes:
        the GPU holding a BERT-Large gets fewer subsequent instances."""
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner,
                                 ServerConfig(homing="least-loaded"))
        server.deploy([(build_model("bert-large"), 1)])
        small = server.deploy([(build_model("bert-base"), 6)])
        homes = [i.home_gpu for i in small]
        assert homes.count(0) < 2  # gpu0 already carries the large model

    def test_unknown_homing_rejected(self):
        with pytest.raises(WorkloadError):
            ServerConfig(homing="chaotic")


class TestUndeploy:
    def test_undeploy_releases_everything(self):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig())
        model = build_model("bert-base")
        (instance,) = server.deploy([(model, 1)])
        assert machine.host.pinned_bytes == model.param_bytes
        server.undeploy(instance.name)
        assert machine.host.pinned_bytes == 0
        assert instance.name not in server.instances

    def test_undeploy_unknown_rejected(self):
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig())
        with pytest.raises(WorkloadError):
            server.undeploy("ghost#0")


class TestDGX1:
    def test_topology(self):
        machine = Machine(Simulator(), dgx1_v100())
        assert machine.gpu_count == 8
        assert machine.switch_of(4) == 2
        # Hybrid cube mesh: each GPU reaches exactly four peers.
        for gpu in range(8):
            peers = sum(1 for other in range(8)
                        if other != gpu and machine.has_nvlink(gpu, other))
            assert peers == 4, gpu

    def test_three_way_parallel_transmission_supported(self):
        from repro.core.partitioner import max_partitions
        machine = Machine(Simulator(), dgx1_v100())
        assert max_partitions(machine, primary=0) == 3

    def test_three_way_pt_plan_beats_two_way(self):
        planner = DeepPlan(dgx1_v100(), noise=0.0)
        model = build_model("bert-large")
        two = planner.plan(model, Strategy.PT, num_gpus=2)
        three = planner.plan(model, Strategy.PT, num_gpus=3)
        assert three.num_partitions == 3
        assert three.predicted_latency < two.predicted_latency
