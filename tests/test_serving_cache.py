"""Unit tests for the LRU instance cache."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.errors import OutOfGPUMemoryError
from repro.hw.memory import GPUMemory
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving.cache import LRUInstanceCache
from repro.serving.instance import ModelInstance


@pytest.fixture(scope="module")
def plan():
    planner = DeepPlan(p3_8xlarge(), noise=0.0)
    return planner.plan(build_model("bert-base"), Strategy.PIPESWITCH)


def make_instance(plan, k):
    return ModelInstance(name=f"bert#{k}", plan=plan, home_gpu=0)


@pytest.fixture
def cache(plan):
    # Room for exactly 3 BERT instances.
    memory = GPUMemory(capacity_bytes=plan.gpu_resident_bytes * 3 + 1024,
                       workspace_bytes=0, device="gpu0")
    return LRUInstanceCache(memory)


class TestAdmission:
    def test_admit_marks_resident(self, cache, plan):
        instance = make_instance(plan, 0)
        assert cache.admit(instance) == []
        assert instance.resident
        assert instance in cache

    def test_admit_duplicate_rejected(self, cache, plan):
        instance = make_instance(plan, 0)
        cache.admit(instance)
        with pytest.raises(ValueError):
            cache.admit(instance)

    def test_eviction_in_lru_order(self, cache, plan):
        instances = [make_instance(plan, k) for k in range(3)]
        for instance in instances:
            cache.admit(instance)
        cache.touch(instances[0])  # 1 is now least recently used
        evicted = cache.admit(make_instance(plan, 3))
        assert [e.name for e in evicted] == ["bert#1"]
        assert not instances[1].resident
        assert cache.evictions == 1

    def test_admit_too_large_raises(self, plan):
        memory = GPUMemory(capacity_bytes=1024, workspace_bytes=0)
        cache = LRUInstanceCache(memory)
        with pytest.raises(OutOfGPUMemoryError):
            cache.admit(make_instance(plan, 0))

    def test_touch_requires_residency(self, cache, plan):
        with pytest.raises(KeyError):
            cache.touch(make_instance(plan, 0))


class TestExplicitEviction:
    def test_evict_releases_memory(self, cache, plan):
        instance = make_instance(plan, 0)
        cache.admit(instance)
        before = cache.memory.used_bytes
        cache.evict(instance)
        assert cache.memory.used_bytes == before - instance.gpu_bytes
        assert not instance.resident

    def test_evict_missing_raises(self, cache, plan):
        with pytest.raises(KeyError):
            cache.evict(make_instance(plan, 9))


class TestPrewarm:
    def test_prewarm_fills_to_capacity(self, cache, plan):
        instances = [make_instance(plan, k) for k in range(5)]
        admitted = cache.prewarm(instances)
        assert admitted == 3
        assert len(cache) == 3
        assert cache.resident_names == ("bert#0", "bert#1", "bert#2")

    def test_prewarm_skips_already_resident(self, cache, plan):
        instance = make_instance(plan, 0)
        cache.admit(instance)
        assert cache.prewarm([instance, make_instance(plan, 1)]) == 1


def make_cache(plan, policy, slots=3, seed=0):
    from repro.serving.cache import InstanceCache

    memory = GPUMemory(capacity_bytes=plan.gpu_resident_bytes * slots + 1024,
                       workspace_bytes=0, device="gpu0")
    return InstanceCache(memory, policy=policy, seed=seed)


class TestEvictionPolicies:
    def test_unknown_policy_rejected(self, plan):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_cache(plan, "mru")

    def test_lru_touch_rescues_oldest(self, plan):
        cache = make_cache(plan, "lru")
        a, b, c, d = (make_instance(plan, k) for k in range(4))
        for inst in (a, b, c):
            cache.admit(inst)
        cache.touch(a)  # a becomes most recent; b is now the LRU victim
        evicted = cache.admit(d)
        assert [v.name for v in evicted] == [b.name]
        assert not b.resident and a.resident

    def test_lfu_evicts_least_frequently_used(self, plan):
        cache = make_cache(plan, "lfu")
        a, b, c, d = (make_instance(plan, k) for k in range(4))
        for inst in (a, b, c):
            cache.admit(inst)
        for _ in range(3):
            cache.touch(a)
        cache.touch(c)
        # Frequencies: a=4, b=1, c=2 (admit counts as first touch).
        evicted = cache.admit(d)
        assert [v.name for v in evicted] == [b.name]

    def test_lfu_breaks_frequency_ties_by_name(self, plan):
        cache = make_cache(plan, "lfu")
        instances = [make_instance(plan, k) for k in range(3)]
        for inst in instances:
            cache.admit(inst)
        evicted = cache.admit(make_instance(plan, 3))
        assert [v.name for v in evicted] == \
            [min(i.name for i in instances)]

    def test_fifo_ignores_touches(self, plan):
        cache = make_cache(plan, "fifo")
        a, b, c, d = (make_instance(plan, k) for k in range(4))
        for inst in (a, b, c):
            cache.admit(inst)
        cache.touch(a)
        cache.touch(a)
        evicted = cache.admit(d)  # a entered first, so a leaves first
        assert [v.name for v in evicted] == [a.name]

    def test_random_policy_is_seed_deterministic(self, plan):
        def victim_sequence(seed):
            cache = make_cache(plan, "random", seed=seed)
            for k in range(3):
                cache.admit(make_instance(plan, k))
            names = []
            for k in range(3, 8):
                names += [v.name for v in
                          cache.admit(make_instance(plan, k))]
            return names

        assert victim_sequence(7) == victim_sequence(7)
        sequences = {tuple(victim_sequence(seed)) for seed in range(6)}
        assert len(sequences) > 1  # different seeds pick different victims

    def test_eviction_counter_counts_every_eviction(self, plan):
        cache = make_cache(plan, "lru")
        for k in range(3):
            cache.admit(make_instance(plan, k))
        assert cache.evictions == 0
        cache.admit(make_instance(plan, 3))
        assert cache.evictions == 1
        explicit = make_instance(plan, 4)
        cache.admit(explicit)
        cache.evict(explicit)
        assert cache.evictions == 3

    def test_prewarm_agrees_with_memory_capacity(self, plan):
        cache = make_cache(plan, "lru", slots=3)
        group = [make_instance(plan, k) for k in range(5)]
        admitted = cache.prewarm(group)
        assert admitted == 3
        assert len(cache) == 3
        assert [i.resident for i in group] == [True] * 3 + [False] * 2
