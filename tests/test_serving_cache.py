"""Unit tests for the LRU instance cache."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.errors import OutOfGPUMemoryError
from repro.hw.memory import GPUMemory
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving.cache import LRUInstanceCache
from repro.serving.instance import ModelInstance


@pytest.fixture(scope="module")
def plan():
    planner = DeepPlan(p3_8xlarge(), noise=0.0)
    return planner.plan(build_model("bert-base"), Strategy.PIPESWITCH)


def make_instance(plan, k):
    return ModelInstance(name=f"bert#{k}", plan=plan, home_gpu=0)


@pytest.fixture
def cache(plan):
    # Room for exactly 3 BERT instances.
    memory = GPUMemory(capacity_bytes=plan.gpu_resident_bytes * 3 + 1024,
                       workspace_bytes=0, device="gpu0")
    return LRUInstanceCache(memory)


class TestAdmission:
    def test_admit_marks_resident(self, cache, plan):
        instance = make_instance(plan, 0)
        assert cache.admit(instance) == []
        assert instance.resident
        assert instance in cache

    def test_admit_duplicate_rejected(self, cache, plan):
        instance = make_instance(plan, 0)
        cache.admit(instance)
        with pytest.raises(ValueError):
            cache.admit(instance)

    def test_eviction_in_lru_order(self, cache, plan):
        instances = [make_instance(plan, k) for k in range(3)]
        for instance in instances:
            cache.admit(instance)
        cache.touch(instances[0])  # 1 is now least recently used
        evicted = cache.admit(make_instance(plan, 3))
        assert [e.name for e in evicted] == ["bert#1"]
        assert not instances[1].resident
        assert cache.evictions == 1

    def test_admit_too_large_raises(self, plan):
        memory = GPUMemory(capacity_bytes=1024, workspace_bytes=0)
        cache = LRUInstanceCache(memory)
        with pytest.raises(OutOfGPUMemoryError):
            cache.admit(make_instance(plan, 0))

    def test_touch_requires_residency(self, cache, plan):
        with pytest.raises(KeyError):
            cache.touch(make_instance(plan, 0))


class TestExplicitEviction:
    def test_evict_releases_memory(self, cache, plan):
        instance = make_instance(plan, 0)
        cache.admit(instance)
        before = cache.memory.used_bytes
        cache.evict(instance)
        assert cache.memory.used_bytes == before - instance.gpu_bytes
        assert not instance.resident

    def test_evict_missing_raises(self, cache, plan):
        with pytest.raises(KeyError):
            cache.evict(make_instance(plan, 9))


class TestPrewarm:
    def test_prewarm_fills_to_capacity(self, cache, plan):
        instances = [make_instance(plan, k) for k in range(5)]
        admitted = cache.prewarm(instances)
        assert admitted == 3
        assert len(cache) == 3
        assert cache.resident_names == ("bert#0", "bert#1", "bert#2")

    def test_prewarm_skips_already_resident(self, cache, plan):
        instance = make_instance(plan, 0)
        cache.admit(instance)
        assert cache.prewarm([instance, make_instance(plan, 1)]) == 1
