"""Integration tests for the inference server."""

import pytest

from repro.core import DeepPlan
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    PoissonWorkload,
    Request,
    ServerConfig,
)
from repro.simkit import Simulator
from repro.units import MS


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


def make_server(planner, strategy="pt+dha", prewarm=True):
    machine = Machine(Simulator(), p3_8xlarge())
    config = ServerConfig(strategy=strategy, prewarm=prewarm)
    return InferenceServer(machine, planner, config)


class TestDeployment:
    def test_instances_spread_round_robin(self, planner, bert):
        server = make_server(planner)
        instances = server.deploy([(bert, 8)])
        homes = [i.home_gpu for i in instances]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_instance_names_unique_across_deploys(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        more = server.deploy([(bert, 2)])
        assert [i.name for i in more] == ["bert-base#2", "bert-base#3"]

    def test_plans_shared_per_architecture(self, planner, bert):
        server = make_server(planner)
        instances = server.deploy([(bert, 3)])
        assert instances[0].plan is instances[1].plan

    def test_bad_count_rejected(self, planner, bert):
        with pytest.raises(WorkloadError):
            make_server(planner).deploy([(bert, 0)])

    def test_warm_capacity_matches_paper_figure13(self, planner, bert):
        """PipeSwitch fits 100 BERT-Base instances on four V100s;
        DeepPlan fits 124 (embeddings stay host-side)."""
        pipeswitch = make_server(planner, "pipeswitch")
        pipeswitch.deploy([(bert, 200)])
        assert pipeswitch.warm_capacity() == 100
        deepplan = make_server(planner, "pt+dha")
        deepplan.deploy([(bert, 200)])
        assert deepplan.warm_capacity() == 124


class TestServing:
    def test_all_warm_requests_fast(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 8)])
        workload = PoissonWorkload(list(server.instances), rate=40.0,
                                   num_requests=200, seed=0)
        report = server.run(workload.generate())
        assert len(report.metrics) == 200
        assert report.metrics.cold_start_rate == 0.0
        assert report.metrics.p99_latency < 40 * MS
        assert report.evictions == 0

    def test_over_capacity_causes_cold_starts_and_evictions(self, planner,
                                                            bert):
        server = make_server(planner)
        server.deploy([(bert, 140)])
        workload = PoissonWorkload(list(server.instances), rate=100.0,
                                   num_requests=400, seed=1)
        report = server.run(workload.generate())
        assert report.prewarmed == 124
        assert report.metrics.cold_start_count > 0
        assert report.evictions >= report.metrics.cold_start_count

    def test_no_prewarm_means_every_first_touch_is_cold(self, planner, bert):
        server = make_server(planner, prewarm=False)
        server.deploy([(bert, 4)])
        requests = [Request(i, f"bert-base#{i}", i * 0.2) for i in range(4)]
        report = server.run(requests)
        assert report.metrics.cold_start_count == 4

    def test_second_touch_is_warm(self, planner, bert):
        server = make_server(planner, prewarm=False)
        server.deploy([(bert, 1)])
        requests = [Request(0, "bert-base#0", 0.0),
                    Request(1, "bert-base#0", 1.0)]
        report = server.run(requests)
        records = sorted(report.metrics.records, key=lambda r: r.request_id)
        assert records[0].cold_start
        assert not records[1].cold_start
        assert records[1].latency < records[0].latency

    def test_requests_for_unknown_instance_rejected(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 1)])
        with pytest.raises(WorkloadError, match="unknown"):
            server.run([Request(0, "ghost#0", 0.0)])

    def test_run_without_instances_rejected(self, planner):
        with pytest.raises(WorkloadError):
            make_server(planner).run([Request(0, "x", 0.0)])

    def test_run_without_requests_rejected(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 1)])
        with pytest.raises(WorkloadError):
            server.run([])

    def test_queueing_on_one_gpu(self, planner, bert):
        """Two simultaneous requests to instances on the same GPU
        serialize (one inference per GPU at a time)."""
        server = make_server(planner)
        server.deploy([(bert, 8)])
        requests = [Request(0, "bert-base#0", 0.0),
                    Request(1, "bert-base#4", 0.0)]
        report = server.run(requests)
        records = sorted(report.metrics.records, key=lambda r: r.request_id)
        assert records[1].started_at >= records[0].finished_at

    def test_mixed_model_deployment(self, planner, bert):
        gpt2 = build_model("gpt2")
        server = make_server(planner)
        server.deploy([(bert, 4), (gpt2, 2)])
        names = list(server.instances)
        workload = PoissonWorkload(names, rate=20.0, num_requests=100, seed=2)
        report = server.run(workload.generate())
        assert len(report.metrics) == 100


class TestStrategyComparison:
    def test_deepplan_beats_pipeswitch_over_capacity(self, planner, bert):
        """The paper's serving headline: under memory pressure DeepPlan
        sustains a much better tail than PipeSwitch."""
        results = {}
        for strategy in ("pipeswitch", "pt+dha"):
            server = make_server(planner, strategy)
            server.deploy([(bert, 160)])
            workload = PoissonWorkload(list(server.instances), rate=100.0,
                                       num_requests=600, seed=3)
            results[strategy] = server.run(workload.generate())
        assert (results["pt+dha"].metrics.p99_latency
                < 0.6 * results["pipeswitch"].metrics.p99_latency)
        assert (results["pt+dha"].metrics.goodput
                > results["pipeswitch"].metrics.goodput)


class TestFailureHandling:
    def test_oversized_model_rejected_at_deploy(self, planner):
        """A model whose resident footprint exceeds a GPU is refused
        up front (with a pointer to the large-model extension)."""
        from repro.models.graph import ModelSpec
        from repro.models.layers import linear

        from repro.core.validate import PlanValidationError

        huge = ModelSpec(
            name="huge",
            layers=tuple(linear(f"fc{i}", 16384, 16384) for i in range(12)),
            seq_len=1, family="custom")
        server = make_server(planner)
        with pytest.raises(PlanValidationError, match="plan_within_budget"):
            server.deploy([(huge, 1)])

    def test_worker_failure_propagates_to_run(self, planner, bert):
        """A fault inside a worker fails run() instead of hanging."""
        server = make_server(planner)
        server.deploy([(bert, 2)])

        def explode(*args, **kwargs):
            raise RuntimeError("injected fault")

        server._caches[0].touch = explode  # fault on the first warm hit
        with pytest.raises(RuntimeError, match="injected fault"):
            server.run([Request(0, "bert-base#0", 0.0)])


class TestAccountingInvariants:
    def test_memory_accounting_consistent_after_run(self, planner, bert):
        """After a churny run, each GPU's reserved bytes equal exactly
        the bytes of instances currently marked resident there, and no
        staging leaks remain."""
        server = make_server(planner)
        server.deploy([(bert, 150)])
        workload = PoissonWorkload(list(server.instances), rate=100.0,
                                   num_requests=500, seed=9)
        server.run(workload.generate())
        for gpu in server.machine.gpus:
            resident = [i for i in server.instances.values()
                        if i.resident and i.home_gpu == gpu.index]
            expected = sum(i.gpu_bytes for i in resident)
            assert gpu.memory.used_bytes == expected
            assert gpu.memory.staging_used_bytes == 0

    def test_host_pins_survive_eviction(self, planner, bert):
        """Eviction frees GPU memory only; host pins persist until
        undeploy."""
        server = make_server(planner)
        instances = server.deploy([(bert, 130)])
        workload = PoissonWorkload(list(server.instances), rate=100.0,
                                   num_requests=300, seed=10)
        report = server.run(workload.generate())
        assert report.evictions > 0
        assert server.machine.host.pinned_bytes == \
            len(instances) * bert.param_bytes


class TestTimeBase:
    """Latency accounting must be invariant to the run's start time."""

    def test_back_to_back_runs_report_identical_latencies(self, planner,
                                                          bert):
        server = make_server(planner)
        server.deploy([(bert, 8)])
        workload = PoissonWorkload(list(server.instances), rate=40.0,
                                   num_requests=60, seed=3)
        first = server.run(workload.generate())
        assert server.sim.now > 0  # the second run starts mid-timeline
        latencies_first = sorted(
            (r.request_id, r.latency) for r in first.metrics.records)
        server.run(workload.generate())
        latencies_second = sorted(
            (r.request_id, r.latency)
            for r in server.metrics.records[len(latencies_first):])
        for (_, a), (_, b) in zip(latencies_first, latencies_second):
            assert a == pytest.approx(b, rel=1e-9)

    def test_goodput_invariant_across_runs(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 8)])
        workload = PoissonWorkload(list(server.instances), rate=40.0,
                                   num_requests=60, seed=3)
        first_goodput = server.run(workload.generate()).metrics.goodput
        server.run(workload.generate())
        assert server.metrics.goodput == pytest.approx(first_goodput)

    def test_submitted_at_is_absolute_arrival(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.5)])
        base = server.sim.now
        server.run([Request(1, "bert-base#1", 0.25)])
        records = sorted(server.metrics.records, key=lambda r: r.request_id)
        assert records[0].submitted_at == pytest.approx(0.5)
        assert records[1].submitted_at == pytest.approx(base + 0.25)
        assert records[1].arrival_time == pytest.approx(0.25)

    def test_windows_keep_consecutive_runs_distinct(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.run([Request(0, "bert-base#0", 0.5)])
        server.sim.run(until=server.sim.now + 120.0)
        server.run([Request(1, "bert-base#1", 0.5)])
        assert len(server.metrics.windows(60.0)) == 2


class TestBatchSizeValidation:
    def test_mismatched_batch_size_rejected_at_run(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        with pytest.raises(WorkloadError, match="batch"):
            server.run([Request(0, "bert-base#0", 0.0, batch_size=4)])

    def test_mismatched_batch_size_rejected_at_submit(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        with pytest.raises(WorkloadError, match="batch"):
            server.submit(Request(0, "bert-base#0", 0.0, batch_size=8))

    def test_matching_batch_size_accepted(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        report = server.run([Request(0, "bert-base#0", 0.0, batch_size=1)])
        assert len(report.metrics) == 1


class TestAuditedServing:
    def test_audited_run_is_clean_and_counts_checks(self, planner, bert):
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig(audit=True))
        server.deploy([(bert, 8)])
        workload = PoissonWorkload(list(server.instances), rate=40.0,
                                   num_requests=100, seed=5)
        report = server.run(workload.generate())
        assert len(report.metrics) == 100
        assert server.auditor is not None
        assert server.auditor.violations == []
        assert server.auditor.checks > 100

    def test_audit_off_installs_no_observers(self, planner, bert):
        server = make_server(planner)
        assert server.auditor is None
        assert server.machine.network.observer is None
        assert all(gpu.memory.observer is None
                   for gpu in server.machine.gpus)

    def test_prewarm_matches_dry_run_capacity(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 140)])
        capacity = server.warm_capacity()
        report = server.run([Request(0, "bert-base#0", 0.0)])
        assert report.prewarmed == capacity


class TestLifecycle:
    """drain / resume / fail_over / recover semantics."""

    def test_submit_after_drain_rejected(self, planner, bert):
        """Regression: a draining server must reject new work loudly, not
        queue it behind workers that will never run it."""
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.drain()
        with pytest.raises(WorkloadError, match="draining"):
            server.submit(Request(request_id=0, instance_name="bert-base#0",
                                  arrival_time=0.0))

    def test_drain_event_fires_immediately_when_idle(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        event = server.drain()
        assert event.triggered

    def test_resume_reopens_submission(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.drain()
        server.resume()
        server.start()
        server.submit(Request(request_id=0, instance_name="bert-base#0",
                              arrival_time=0.0))
        assert server.outstanding == 1

    def test_drain_event_fires_after_inflight_completes(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.start()
        server.prewarm()
        server.submit(Request(request_id=0, instance_name="bert-base#0",
                              arrival_time=0.0))
        event = server.drain()
        assert not event.triggered
        server.sim.run(event)
        assert server.outstanding == 0
        assert len(server.metrics.records) == 1

    def test_fail_over_orphans_queued_requests(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        # Workers not started: everything stays queued.
        for k in range(4):
            server.submit(Request(request_id=k, instance_name="bert-base#0",
                                  arrival_time=0.0))
        orphans = server.fail_over()
        assert [r.request_id for r in orphans] == [0, 1, 2, 3]
        assert server.outstanding == 0
        assert server.is_down

    def test_submit_while_down_rejected(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.fail_over()
        with pytest.raises(WorkloadError, match="down"):
            server.submit(Request(request_id=0, instance_name="bert-base#0",
                                  arrival_time=0.0))

    def test_recover_evicts_residency(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.prewarm()
        assert server.is_warm("bert-base#0")
        server.fail_over()
        server.recover()
        assert not server.is_warm("bert-base#0")
        assert not server.is_down

    def test_phantom_execution_discarded_on_crash(self, planner, bert):
        """Work in flight at crash time completes in the simulator but is
        never recorded; the orphaned request is returned for retry."""
        server = make_server(planner)
        server.deploy([(bert, 2)])
        server.start()
        server.prewarm()
        request = Request(request_id=7, instance_name="bert-base#0",
                          arrival_time=0.0)
        server.submit(request)

        def crasher(sim, server):
            yield sim.timeout(0.0005)  # mid-execution
            orphans = server.fail_over()
            assert [r.request_id for r in orphans] == [7]

        server.sim.process(crasher(server.sim, server), name="crasher")
        server.sim.run()
        assert server.metrics.records == []
        assert server.requests_served == 0
        assert server.outstanding == 0

    def test_completion_callbacks_fire(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        seen = []
        server.add_completion_callback(
            lambda request, record: seen.append(record.request_id))
        workload = PoissonWorkload(list(server.instances), rate=100.0,
                                   num_requests=5, seed=0)
        server.run(workload.generate())
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_busy_time_accumulates(self, planner, bert):
        server = make_server(planner)
        server.deploy([(bert, 2)])
        workload = PoissonWorkload(list(server.instances), rate=100.0,
                                   num_requests=5, seed=0)
        server.run(workload.generate())
        assert server.requests_served == 5
        assert server.busy_time > 0
