"""Tests for the mixture-of-experts extension."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.errors import PlanError
from repro.hw.specs import p3_8xlarge
from repro.models.moe import (
    build_moe_transformer,
    expert_structure,
    routed_submodel,
    uniform_routing,
)


@pytest.fixture(scope="module")
def moe():
    return build_moe_transformer(num_layers=4, num_experts=8, top_k=2,
                                 seq_len=512)


class TestConstruction:
    def test_expert_structure(self, moe):
        structure = expert_structure(moe)
        assert set(structure) == {0, 1, 2, 3}
        assert all(experts == set(range(8)) for experts in structure.values())

    def test_expert_bank_dominates_parameters(self, moe):
        expert_bytes = sum(l.param_bytes for l in moe.layers
                           if ".moe.expert" in l.name)
        assert expert_bytes > 0.5 * moe.param_bytes

    def test_invalid_top_k_rejected(self):
        with pytest.raises(PlanError):
            build_moe_transformer(num_experts=4, top_k=5)


class TestRouting:
    def test_uniform_routing_picks_top_k(self, moe):
        routing = uniform_routing(moe, top_k=2, seed=3)
        assert set(routing) == {0, 1, 2, 3}
        assert all(len(chosen) == 2 for chosen in routing.values())

    def test_routing_is_seeded(self, moe):
        assert uniform_routing(moe, 2, seed=5) == uniform_routing(moe, 2,
                                                                  seed=5)
        assert uniform_routing(moe, 2, seed=5) != uniform_routing(moe, 2,
                                                                  seed=6)

    def test_top_k_larger_than_bank_rejected(self, moe):
        with pytest.raises(PlanError):
            uniform_routing(moe, top_k=9)


class TestRoutedSubmodel:
    def test_submodel_keeps_only_chosen_experts(self, moe):
        routing = uniform_routing(moe, top_k=2, seed=0)
        sub = routed_submodel(moe, routing)
        for layer in sub.layers:
            if ".moe.expert" in layer.name:
                block = int(layer.name.split(".")[1])
                expert = int(layer.name.split("expert")[1].split(".")[0])
                assert expert in routing[block]
        kept_structure = expert_structure(sub)
        assert all(kept_structure[b] == set(routing[b]) for b in routing)

    def test_submodel_is_much_smaller(self, moe):
        sub = routed_submodel(moe, uniform_routing(moe, top_k=2, seed=0))
        # 2 of 8 experts kept: the expert bank shrinks 4x.
        assert sub.param_bytes < 0.55 * moe.param_bytes

    def test_non_expert_layers_preserved_in_order(self, moe):
        sub = routed_submodel(moe, uniform_routing(moe, top_k=2, seed=0))
        backbone = [l.name for l in moe.layers if ".moe.expert" not in l.name]
        sub_backbone = [l.name for l in sub.layers
                        if ".moe.expert" not in l.name]
        assert backbone == sub_backbone

    def test_routing_unknown_block_rejected(self, moe):
        with pytest.raises(PlanError, match="unknown blocks"):
            routed_submodel(moe, {17: frozenset({0})})

    def test_non_moe_model_rejected(self):
        from repro.models import build_model
        with pytest.raises(PlanError, match="no MoE"):
            routed_submodel(build_model("gpt2"), {})


class TestPlanningIntegration:
    def test_routed_cold_start_is_faster(self, moe):
        """The Section 7 claim: identifying the expert shrinks the
        provisioning work, and DHA stacks on top."""
        planner = DeepPlan(p3_8xlarge(), noise=0.0)
        full = planner.plan(moe, Strategy.PIPESWITCH)
        sub = routed_submodel(moe, uniform_routing(moe, top_k=2, seed=0))
        routed = planner.plan(sub, Strategy.PIPESWITCH)
        routed_dha = planner.plan(sub, Strategy.PT_DHA)
        assert routed.predicted_latency < 0.7 * full.predicted_latency
        assert routed_dha.predicted_latency < routed.predicted_latency
