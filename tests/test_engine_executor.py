"""Unit and integration tests for the discrete-event plan executor."""

import pytest

from repro.core import DeepPlan, Strategy
from repro.engine import execute_plan, execute_warm
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.simkit import Simulator
from repro.units import MS


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


def fresh_machine():
    return Machine(Simulator(), p3_8xlarge())


def run(machine, process):
    return machine.sim.run(process.done)


class TestColdStart:
    def test_executed_latency_matches_prediction(self, planner, bert):
        """Contention-free, the DES executor and the analytic timeline
        must agree closely — they model the same stream semantics."""
        for strategy in (Strategy.PIPESWITCH, Strategy.PT):
            plan = planner.plan(bert, strategy)
            machine = fresh_machine()
            secondaries = planner.secondary_gpus(0, plan)
            result = run(machine, execute_plan(
                machine, planner.cost_model, plan, 0, secondaries))
            assert result.latency == pytest.approx(
                plan.predicted_latency, rel=0.02), strategy

    def test_all_layers_traced_in_order(self, planner, bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        result = run(machine, execute_plan(machine, planner.cost_model,
                                           plan, 0))
        assert len(result.layer_traces) == len(bert.layers)
        ends = [t.end for t in result.layer_traces]
        assert ends == sorted(ends)

    def test_stall_decomposition_is_consistent(self, planner, bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        result = run(machine, execute_plan(machine, planner.cost_model,
                                           plan, 0))
        assert result.latency == pytest.approx(
            result.total_stall + result.execution_time)
        # BERT under pure pipelining is stall-dominated (paper Figure 2).
        assert result.total_stall / result.latency > 0.6

    def test_dha_layers_report_zero_stall(self, planner, bert):
        plan = planner.plan(bert, Strategy.DHA)
        machine = fresh_machine()
        result = run(machine, execute_plan(machine, planner.cost_model,
                                           plan, 0))
        word = bert.layer_index("embeddings.word")
        assert result.layer_traces[word].stall == 0.0

    def test_secondary_count_must_match_plan(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT)
        machine = fresh_machine()
        with pytest.raises(ValueError, match="secondary"):
            execute_plan(machine, planner.cost_model, plan, 0, [])

    def test_lane_accounting_covers_all_loaded_bytes(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT)
        machine = fresh_machine()
        result = run(machine, execute_plan(machine, planner.cost_model,
                                           plan, 0, [2]))
        assert sum(result.lane_bytes.values()) == plan.gpu_resident_bytes
        assert set(result.lane_bytes) == {0, 2}

    def test_lane_bandwidth_near_line_rate(self, planner, bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        result = run(machine, execute_plan(machine, planner.cost_model,
                                           plan, 0))
        bandwidth = result.lane_bandwidth(0)
        assert 9e9 < bandwidth < 12.0e9  # Table 2: ~10.9 GB/s for BERT

    def test_baseline_executes_after_full_load(self, planner, bert):
        plan = planner.plan(bert, Strategy.BASELINE)
        machine = fresh_machine()
        result = run(machine, execute_plan(machine, planner.cost_model,
                                           plan, 0))
        load_time = planner.cost_model.model_load_time(bert)
        first = result.layer_traces[0]
        assert first.start >= load_time * 0.999

    def test_staging_memory_released_after_migration(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT)
        machine = fresh_machine()
        run(machine, execute_plan(machine, planner.cost_model, plan, 0, [2]))
        assert machine.gpu(2).memory.staging_used_bytes == 0


class TestWarmExecution:
    def test_warm_latency_near_in_memory_exec(self, planner, bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        result = run(machine, execute_warm(machine, planner.cost_model,
                                           plan, 0))
        expected = planner.cost_model.model_exec_inmem(bert, 1)
        assert result.latency == pytest.approx(expected, rel=1e-6)

    def test_dha_plan_pays_recurring_pcie_cost(self, planner, bert):
        """DeepPlan's warm inferences keep reading host memory for the
        layers it never loads — slightly slower than fully resident."""
        loaded = planner.plan(bert, Strategy.PIPESWITCH)
        dha = planner.plan(bert, Strategy.DHA)
        m1, m2 = fresh_machine(), fresh_machine()
        warm_loaded = run(m1, execute_warm(m1, planner.cost_model, loaded, 0))
        warm_dha = run(m2, execute_warm(m2, planner.cost_model, dha, 0))
        assert warm_dha.latency > warm_loaded.latency
        assert warm_dha.latency < warm_loaded.latency + 3 * MS

    def test_warm_execution_requires_no_transfers(self, planner, bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        result = run(machine, execute_warm(machine, planner.cost_model,
                                           plan, 0))
        assert result.lane_bytes == {}


class TestContention:
    def test_two_pipeswitch_cold_starts_same_switch_slow_down(self, planner,
                                                              bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        first = execute_plan(machine, planner.cost_model, plan, 0)
        second = execute_plan(machine, planner.cost_model, plan, 1)
        r1 = run(machine, first)
        r2 = run(machine, second)
        alone = plan.predicted_latency
        assert r1.latency > 1.5 * alone
        assert r2.latency > 1.5 * alone

    def test_cross_switch_cold_starts_do_not_interfere(self, planner, bert):
        plan = planner.plan(bert, Strategy.PIPESWITCH)
        machine = fresh_machine()
        first = execute_plan(machine, planner.cost_model, plan, 0)
        second = execute_plan(machine, planner.cost_model, plan, 2)
        r1 = run(machine, first)
        assert r1.latency == pytest.approx(plan.predicted_latency, rel=0.02)


class TestCoalescedFastPath:
    def test_fast_path_matches_detailed_timing(self, planner, bert):
        """detailed_traces=False must produce identical latency and
        stall totals — it is the same schedule, coalesced."""
        for strategy in (Strategy.PIPESWITCH, Strategy.DHA, Strategy.PT_DHA):
            plan = planner.plan(bert, strategy)
            results = []
            for detailed in (True, False):
                machine = fresh_machine()
                secondaries = planner.secondary_gpus(0, plan)
                results.append(run(machine, execute_plan(
                    machine, planner.cost_model, plan, 0, secondaries,
                    detailed_traces=detailed)))
            detailed_result, fast_result = results
            assert fast_result.latency == pytest.approx(
                detailed_result.latency, rel=1e-9), strategy
            assert fast_result.total_stall == pytest.approx(
                detailed_result.total_stall, rel=1e-6, abs=1e-9), strategy
            assert fast_result.layer_traces == []


class TestSegmentCache:
    """The coalesced-segment cache must not keep dead plans alive."""

    def test_warm_per_layer_path_matches_coalesced(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT_DHA)
        times = []
        for coalesced in (True, False):
            machine = fresh_machine()
            run(machine, execute_warm(machine, planner.cost_model, plan, 0,
                                      coalesced=coalesced))
            times.append(machine.sim.now)
        assert times[0] == pytest.approx(times[1], rel=1e-12)

    def test_repeat_executions_reuse_cached_segments(self, planner, bert):
        from repro.engine import executor

        plan = planner.plan(bert, Strategy.PT_DHA)
        machine = fresh_machine()
        run(machine, execute_warm(machine, planner.cost_model, plan, 0))
        populated = len(executor._SEGMENT_CACHE)
        run(machine, execute_warm(machine, planner.cost_model, plan, 0))
        assert len(executor._SEGMENT_CACHE) == populated

    def test_dropped_plans_are_collected_with_their_cache_entries(
            self, planner, bert):
        import gc
        import weakref

        from repro.engine import executor

        plan = planner.plan(bert, Strategy.PT_DHA)
        machine = fresh_machine()
        run(machine, execute_warm(machine, planner.cost_model, plan, 0))
        run(machine, execute_plan(machine, planner.cost_model, plan, 0,
                                  planner.secondary_gpus(0, plan),
                                  detailed_traces=False))
        before = len(executor._SEGMENT_CACHE)
        assert before >= 2  # warm + cold segments for this plan
        ref = weakref.ref(plan)
        del plan
        if planner.plan_cache is not None:  # the plan cache pins plans
            planner.plan_cache.clear()
        gc.collect()
        assert ref() is None, "cache kept a strong reference to the plan"
        assert len(executor._SEGMENT_CACHE) <= before - 2
