"""Unit and property tests for fair-share bandwidth links."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import FlowNetwork, Link, Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_network(sim, *bandwidths):
    network = FlowNetwork(sim)
    links = [Link(f"link{i}", bw) for i, bw in enumerate(bandwidths)]
    return network, links


class TestSingleFlow:
    def test_transfer_time_is_bytes_over_bandwidth(self, sim):
        network, (link,) = make_network(sim, 100.0)
        done = network.transfer([link], 1000.0)
        sim.run(done)
        assert sim.now == pytest.approx(10.0)

    def test_setup_delay_precedes_transfer(self, sim):
        network, (link,) = make_network(sim, 100.0)
        done = network.transfer([link], 1000.0, setup_delay=2.5)
        sim.run(done)
        assert sim.now == pytest.approx(12.5)

    def test_zero_bytes_completes_after_setup(self, sim):
        network, (link,) = make_network(sim, 100.0)
        done = network.transfer([link], 0.0, setup_delay=1.0)
        sim.run(done)
        assert sim.now == pytest.approx(1.0)

    def test_max_rate_caps_below_link_bandwidth(self, sim):
        network, (link,) = make_network(sim, 100.0)
        done = network.transfer([link], 1000.0, max_rate=10.0)
        sim.run(done)
        assert sim.now == pytest.approx(100.0)

    def test_multi_link_path_bottleneck(self, sim):
        network, (fast, slow) = make_network(sim, 100.0, 25.0)
        done = network.transfer([fast, slow], 100.0)
        sim.run(done)
        assert sim.now == pytest.approx(4.0)

    def test_negative_bytes_rejected(self, sim):
        network, (link,) = make_network(sim, 100.0)
        with pytest.raises(ValueError):
            network.transfer([link], -1.0)

    def test_empty_path_rejected(self, sim):
        network = FlowNetwork(sim)
        with pytest.raises(ValueError):
            network.transfer([], 10.0)


class TestFairSharing:
    def test_two_flows_halve_bandwidth(self, sim):
        network, (link,) = make_network(sim, 100.0)
        a = network.transfer([link], 1000.0)
        b = network.transfer([link], 1000.0)
        sim.run(a)
        # Both flows run at 50 B/s until both finish at t=20.
        assert sim.now == pytest.approx(20.0)
        assert b.triggered

    def test_short_flow_releases_share_to_long_flow(self, sim):
        network, (link,) = make_network(sim, 100.0)
        long = network.transfer([link], 1000.0)
        network.transfer([link], 100.0)
        sim.run(long)
        # Share until t=2 (short flow done: 100B at 50B/s), then full rate:
        # long has 1000-100=900 left, 9s more => t=11.
        assert sim.now == pytest.approx(11.0)

    def test_late_joiner_slows_existing_flow(self, sim):
        network, (link,) = make_network(sim, 100.0)
        first = network.transfer([link], 1000.0)
        network.transfer([link], 1000.0, setup_delay=5.0)
        sim.run(first)
        # t<5: first alone moves 500. Then shared at 50 B/s: 10 s more.
        assert sim.now == pytest.approx(15.0)

    def test_shared_uplink_with_private_lanes(self, sim):
        """Two GPUs behind one switch each get half the uplink (Table 2)."""
        network, (lane_a, lane_b, uplink) = make_network(sim, 100.0, 100.0, 100.0)
        a = network.transfer([lane_a, uplink], 500.0)
        b = network.transfer([lane_b, uplink], 500.0)
        sim.run(a)
        assert sim.now == pytest.approx(10.0)  # 50 B/s each through uplink
        assert b.triggered

    def test_unbalanced_paths_max_min_allocation(self, sim):
        """A flow capped by its private lane frees uplink share for others."""
        network, (narrow, wide, uplink) = make_network(sim, 10.0, 100.0, 100.0)
        capped = network.transfer([narrow, uplink], 100.0)
        greedy = network.transfer([wide, uplink], 900.0)
        sim.run(capped)
        assert sim.now == pytest.approx(10.0)  # narrow flow runs at 10 B/s
        sim.run(greedy)
        # greedy got 90 B/s while sharing, then 100 B/s: 900 = 90*10 + 0
        assert sim.now == pytest.approx(10.0)

    def test_bytes_carried_accounting(self, sim):
        network, (link,) = make_network(sim, 100.0)
        done = network.transfer([link], 123.0)
        sim.run(done)
        assert link.bytes_carried == pytest.approx(123.0)


class TestLinkValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("bad", 0.0)


class TestRebalanceRobustness:
    def test_fractional_weights_terminate(self, sim):
        """Regression: float residue in per-link load must not hang.

        Freezing flows with fractional weights leaves residue in the
        shared link's summed load (0.1 + 0.2 + 0.3 subtracts back to
        ~3e-17, not 0.0).  Progressive filling then picked the drained
        link as the bottleneck forever, since no unfrozen flow crossed
        it — an infinite loop inside a single rebalance.
        """
        import signal

        network, (shared, private) = make_network(sim, 1.0, 10.0)
        for weight in (0.1, 0.2, 0.3):
            network.transfer([shared], 100.0, weight=weight)
        done = network.transfer([private], 1000.0)

        def bail(signum, frame):
            raise TimeoutError("progressive filling did not terminate")

        previous = signal.signal(signal.SIGALRM, bail)
        signal.alarm(20)
        try:
            sim.run(done)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
        assert sim.now == pytest.approx(100.0)

    def test_sub_ulp_completion_wait_terminates(self, sim):
        """Regression: a wake-up closer than one clock tick must not spin.

        Late in a long run, a fast link can owe a flow less than one
        representable tick of simulated time (residual / rate underflows
        ``ulp(now)``).  Scheduling the timer at ``now + wait == now``
        settled zero elapsed time, recomputed the identical wait, and
        spun forever at a frozen timestamp.  The rebalance must clamp the
        wait so time actually advances.
        """
        import signal

        network, (slow, fast) = make_network(sim, 1.0, 1e11)
        # Drive the clock far from zero so ulp(now) dwarfs the residual
        # transfer time below: 0.002 B / 1e11 B/s = 2e-14 s < ulp(6e8).
        sim.run(network.transfer([slow], 6e8))
        done = network.transfer([fast], 0.002)

        def bail(signum, frame):
            raise TimeoutError("sub-ulp wake-up did not terminate")

        previous = signal.signal(signal.SIGALRM, bail)
        signal.alarm(20)
        try:
            sim.run(done)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
        assert done.triggered
        assert sim.now > 6e8

    def test_non_positive_max_rate_is_rejected(self, sim):
        """A non-positive cap would starve the flow forever (its done
        event could never fire); it is an argument error, like the
        weight and nbytes checks."""
        network, (link,) = make_network(sim, 100.0)
        with pytest.raises(ValueError, match="max_rate"):
            network.transfer([link], 500.0, max_rate=0.0)
        with pytest.raises(ValueError, match="max_rate"):
            network.transfer([link], 500.0, max_rate=-1.0)
        with pytest.raises(ValueError, match="max_rate"):
            network.transfer_with_milestones([link], 500.0, [100.0],
                                             max_rate=0.0)
        assert not network.active_flows

    def test_negative_milestone_offset_is_rejected(self, sim):
        network, (link,) = make_network(sim, 100.0)
        with pytest.raises(ValueError, match="non-negative"):
            network.transfer_with_milestones([link], 500.0, [-1.0, 100.0])
        assert not network.active_flows

    def test_rate_starved_flow_does_not_crash_rebalance(self, sim):
        """A fully rate-starved flow set must not divide by zero.

        With every active flow at rate 0 (a link drained to zero residual
        by float-exhausted allocations) there is no next event to arm a
        timer for; the rebalance simply waits for the next flow start or
        finish.
        """
        # Incremental explicitly: the from-scratch slow path recomputes
        # every rate on every wake-up, so the hand-zeroed rate below
        # would simply be repaired there.
        network = FlowNetwork(sim, incremental=True)
        link = Link("link0", 100.0)
        starved = network.transfer([link], 500.0)
        (flow,) = network.active_flows
        # Zero the assigned rate by hand — the float-residue starvation
        # this models needs an adversarial allocation history — and force
        # a milestone-style wake-up, which keeps rates as they are.
        flow.rate = 0.0
        network._rebalance()
        sim.run()
        assert not starved.triggered
        assert len(network.active_flows) == 1
        # The next flow start refills the component; both drain normally.
        done = network.transfer([link], 1000.0)
        sim.run(done)
        assert starved.triggered


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                   max_size=6),
    delays=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=6,
                    max_size=6),
    bandwidth=st.floats(min_value=1.0, max_value=1e4),
)
def test_byte_conservation_property(sizes, delays, bandwidth):
    """Whatever the contention pattern, every byte requested is delivered
    and the link never carries more than capacity x elapsed time."""
    sim = Simulator()
    network = FlowNetwork(sim)
    link = Link("l", bandwidth)
    flows = [network.transfer([link], size, setup_delay=delay)
             for size, delay in zip(sizes, delays)]
    sim.run()
    assert all(flow.triggered for flow in flows)
    assert link.bytes_carried == pytest.approx(sum(sizes), rel=1e-6, abs=1e-2)
    assert link.bytes_carried <= bandwidth * sim.now * (1 + 1e-9) + 1e-2


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=2,
                   max_size=5),
)
def test_concurrent_flows_finish_no_earlier_than_alone(sizes):
    """Contention can only slow a flow down, never speed it up."""
    bandwidth = 100.0

    def finish_time(all_sizes, index):
        sim = Simulator()
        network = FlowNetwork(sim)
        link = Link("l", bandwidth)
        flows = [network.transfer([link], s) for s in all_sizes]
        sim.run(flows[index])
        return sim.now

    for i, size in enumerate(sizes):
        alone = size / bandwidth
        assert finish_time(sizes, i) >= alone - 1e-9
