"""Unit and property tests for multi-seed statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import compare, summarize


class TestSummarize:
    def test_basic_moments(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.stddev == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_mentions_mean_and_count(self):
        text = str(summarize([1.0, 2.0]))
        assert "1.5" in text
        assert "n=2" in text

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=30))
    def test_bounds_property(self, samples):
        summary = summarize(samples)
        # Summation rounding can push the mean a few ULPs past the bounds.
        slack = 1e-9 * (1.0 + abs(summary.mean))
        assert summary.minimum - slack <= summary.mean <= \
            summary.maximum + slack
        assert summary.stddev >= 0


class TestCompare:
    def test_clear_separation(self):
        low = [1.0, 1.1, 0.9, 1.05]
        high = [5.0, 5.1, 4.9, 5.05]
        assert compare(low, high) == -1
        assert compare(high, low) == 1

    def test_overlap_is_a_tie(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [1.5, 2.5, 3.5, 2.0]
        assert compare(a, b) == 0

    def test_symmetry(self):
        a, b = [1.0, 2.0], [10.0, 11.0]
        assert compare(a, b) == -compare(b, a)
