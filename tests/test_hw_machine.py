"""Unit tests for machine topology and data movement."""

import pytest

from repro.errors import TopologyError
from repro.hw.machine import Machine
from repro.hw.specs import a5000x2, machine_presets, p3_8xlarge
from repro.simkit import Simulator
from repro.units import MB


@pytest.fixture
def machine():
    return Machine(Simulator(), p3_8xlarge())


class TestSpecs:
    def test_presets_registry(self):
        presets = machine_presets()
        assert set(presets) == {"p3.8xlarge", "a5000x2", "dgx1-v100"}
        for builder in presets.values():
            spec = builder()
            assert spec.gpu_count >= 2
            assert spec.host_memory_bytes > spec.gpu.memory_bytes

    def test_p3_matches_paper_platform(self):
        spec = p3_8xlarge()
        assert spec.gpu_count == 4
        assert spec.pcie_switch_groups == ((0, 1), (2, 3))
        assert spec.gpu.memory_bytes == 16 * 1024 ** 3

    def test_switch_groups_must_cover_gpus(self):
        import dataclasses
        spec = p3_8xlarge()
        with pytest.raises(ValueError):
            dataclasses.replace(spec, pcie_switch_groups=((0, 1), (2,)))

    def test_invalid_nvlink_pair_rejected(self):
        import dataclasses
        spec = a5000x2()
        with pytest.raises(ValueError):
            dataclasses.replace(spec, nvlink_pairs=((0, 0),))


class TestTopology:
    def test_switch_assignment(self, machine):
        assert machine.switch_of(0) == 0
        assert machine.switch_of(1) == 0
        assert machine.switch_of(2) == 1
        assert machine.switch_of(3) == 1

    def test_share_pcie_switch(self, machine):
        assert machine.share_pcie_switch(0, 1)
        assert not machine.share_pcie_switch(0, 2)

    def test_nvlink_full_mesh(self, machine):
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert machine.has_nvlink(a, b)

    def test_parallel_transmission_peers_cross_switch_only(self, machine):
        assert machine.parallel_transmission_peers(0) == [2, 3]
        assert machine.parallel_transmission_peers(2) == [0, 1]

    def test_unknown_gpu_raises(self, machine):
        with pytest.raises(TopologyError):
            machine.gpu(7)
        with pytest.raises(TopologyError):
            machine.switch_of(-9)

    def test_nvlink_path_missing_raises(self):
        import dataclasses
        spec = dataclasses.replace(p3_8xlarge(), nvlink_pairs=((0, 2),))
        machine = Machine(Simulator(), spec)
        with pytest.raises(TopologyError):
            machine.nvlink_path(0, 1)

    def test_describe_mentions_all_parts(self, machine):
        text = machine.describe()
        assert "p3.8xlarge" in text
        assert "switch 0" in text and "switch 1" in text
        assert "nvlink" in text


class TestDataMovement:
    def test_host_to_device_takes_expected_time(self, machine):
        sim = machine.sim
        spec = machine.spec
        nbytes = 120 * MB
        done = machine.host_to_device(0, nbytes)
        sim.run(done)
        expected = spec.pcie_copy_overhead + nbytes / spec.pcie_lane_bandwidth
        assert sim.now == pytest.approx(expected, rel=1e-9)

    def test_shared_switch_halves_bandwidth(self, machine):
        """GPUs 0 and 1 share a switch; 0 and 2 do not (paper Table 2)."""
        nbytes = 120 * MB

        def loading_time(pair):
            machine_ = Machine(Simulator(), p3_8xlarge())
            done = [machine_.host_to_device(g, nbytes) for g in pair]
            machine_.sim.run(done[0])
            return machine_.sim.now

        contended = loading_time((0, 1))
        independent = loading_time((0, 2))
        assert contended > 1.8 * independent

    def test_device_to_device_uses_nvlink(self, machine):
        nbytes = 120 * MB
        done = machine.device_to_device(1, 0, nbytes)
        machine.sim.run(done)
        expected = (machine.spec.nvlink_copy_overhead
                    + nbytes / machine.spec.nvlink_bandwidth)
        assert machine.sim.now == pytest.approx(expected, rel=1e-9)

    def test_nvlink_does_not_contend_with_pcie(self, machine):
        """NVLink is a separate path: concurrent PCIe+NVLink don't slow
        each other (the overlap PT relies on, Section 4.2)."""
        nbytes = 120 * MB
        pcie = machine.host_to_device(0, nbytes)
        machine.device_to_device(1, 0, nbytes)
        machine.sim.run(pcie)
        expected = (machine.spec.pcie_copy_overhead
                    + nbytes / machine.spec.pcie_lane_bandwidth)
        assert machine.sim.now == pytest.approx(expected, rel=1e-9)


class TestNVLinkDuplex:
    def test_opposing_transfers_do_not_contend(self, machine):
        """NVLink is full-duplex: simultaneous 0->2 and 2->0 copies each
        get the full per-direction bandwidth."""
        nbytes = 120 * MB
        forward = machine.device_to_device(0, 2, nbytes)
        machine.device_to_device(2, 0, nbytes)
        machine.sim.run(forward)
        expected = (machine.spec.nvlink_copy_overhead
                    + nbytes / machine.spec.nvlink_bandwidth)
        assert machine.sim.now == pytest.approx(expected, rel=1e-9)

    def test_same_direction_transfers_share(self, machine):
        """Two copies in the same direction do share the link."""
        nbytes = 120 * MB
        first = machine.device_to_device(0, 2, nbytes)
        machine.device_to_device(0, 2, nbytes)
        machine.sim.run(first)
        expected = (machine.spec.nvlink_copy_overhead
                    + 2 * nbytes / machine.spec.nvlink_bandwidth)
        assert machine.sim.now == pytest.approx(expected, rel=1e-9)
