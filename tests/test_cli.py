"""Tests for the ``deepplan`` command-line interface."""

import pytest

from repro.cli import main


class TestModels:
    def test_lists_all_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("resnet50", "bert-base", "gpt2-medium"):
            assert name in out


class TestTopo:
    def test_describes_machine(self, capsys):
        assert main(["topo", "--machine", "p3.8xlarge"]) == 0
        out = capsys.readouterr().out
        assert "pcie switch 0" in out
        assert "nvlink" in out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["topo", "--machine", "dgx-9000"])


class TestPlan:
    def test_plan_summary(self, capsys):
        assert main(["plan", "--model", "bert-base",
                     "--strategy", "pt+dha"]) == 0
        out = capsys.readouterr().out
        assert "plan[pt+dha]" in out
        assert "dha layers" in out

    def test_show_layers(self, capsys):
        assert main(["plan", "--model", "gpt2", "--show-layers", "3"]) == 0
        out = capsys.readouterr().out
        assert "wte" in out
        assert "dha" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "alexnet"])


class TestInfer:
    def test_compares_all_strategies_by_default(self, capsys):
        assert main(["infer", "--model", "resnet50"]) == 0
        out = capsys.readouterr().out
        for strategy in ("baseline", "pipeswitch", "dha", "pt", "pt+dha"):
            assert strategy in out

    def test_single_strategy(self, capsys):
        assert main(["infer", "--model", "resnet50",
                     "--strategy", "pipeswitch"]) == 0
        out = capsys.readouterr().out
        assert "pipeswitch" in out
        assert "pt+dha" not in out


class TestServe:
    def test_small_serving_run(self, capsys):
        assert main(["serve", "--model", "bert-base", "--instances", "8",
                     "--rate", "50", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "p99_ms" in out


class TestServeAudit:
    def test_audited_serving_run(self, capsys):
        assert main(["serve", "--model", "bert-base", "--instances", "6",
                     "--rate", "40", "--requests", "30", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "invariant checks" in out
        assert "0 violations" in out


class TestCluster:
    def test_small_cluster_run(self, capsys):
        assert main(["cluster", "--machines", "2", "--instances", "6",
                     "--rate", "50", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "machine" in out
        assert "m0" in out and "m1" in out
        assert "p99" in out

    def test_faulty_audited_cluster_run(self, capsys):
        assert main(["cluster", "--machines", "3", "--policy", "affinity",
                     "--instances", "9", "--rate", "60", "--requests", "80",
                     "--faults", "1", "--seed", "3", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "crash" in out
        assert "0 violations" in out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--policy", "nearest"])


class TestAudit:
    def test_differential_suite_passes(self, capsys):
        assert main(["audit", "--cases", "5"]) == 0
        out = capsys.readouterr().out
        assert "5/5 cases agree" in out
        assert "0 outside the prediction bracket" in out


class TestParser:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlanOutput:
    def test_plan_saved_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "plan.json"
        assert main(["plan", "--model", "resnet50",
                     "--output", str(out_file)]) == 0
        assert "saved deployable plan" in capsys.readouterr().out
        from repro.core import load_plan
        plan = load_plan(out_file)
        assert plan.model.name == "resnet50"


class TestInferGantt:
    def test_gantt_rendered(self, capsys):
        assert main(["infer", "--model", "resnet50",
                     "--strategy", "pipeswitch", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "pcie gpu0" in out
