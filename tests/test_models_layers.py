"""Unit tests for layer specs and builder helpers."""

import pytest

from repro.models.layers import (
    LayerKind,
    LayerSpec,
    activation,
    attention,
    batchnorm2d,
    conv2d,
    elementwise,
    embedding,
    layernorm,
    linear,
    pooling,
)
from repro.units import MB


class TestBuilders:
    def test_embedding_sizes_match_paper_table1(self):
        """BERT-Base's tables: word = 89.42 MiB, position = 1.50 MiB."""
        word = embedding("word", 30522, 768, 384)
        position = embedding("pos", 512, 768, 384)
        assert word.param_bytes / MB == pytest.approx(89.42, abs=0.01)
        assert position.param_bytes / MB == pytest.approx(1.50, abs=0.01)

    def test_embedding_dha_traffic_touches_only_used_rows(self):
        word = embedding("word", 30522, 768, 384)
        assert word.dha_pcie_bytes(1) == 384 * 768 * 4
        assert word.gather

    def test_embedding_traffic_scales_with_batch(self):
        word = embedding("word", 30522, 768, 384)
        assert word.dha_pcie_bytes(4) == 4 * word.dha_pcie_bytes(1)

    def test_conv_restreams_weights(self):
        conv = conv2d("c", 256, 256, 3, 14)
        assert conv.param_bytes / MB == pytest.approx(2.25, abs=0.01)
        assert conv.dha_pcie_bytes(1) == pytest.approx(1.8 * conv.param_bytes)
        # Conv DHA traffic is weight streaming: batch-independent.
        assert conv.dha_pcie_bytes(8) == conv.dha_pcie_bytes(1)

    def test_linear_rereads_per_token_tile(self):
        fc = linear("fc", 768, 768, tokens_per_item=384, bias=False)
        assert fc.dha_pcie_bytes(1) == pytest.approx(12 * fc.param_bytes, rel=0.01)

    def test_linear_single_token_reads_weights_once(self):
        fc = linear("fc", 2048, 1000, tokens_per_item=1)
        assert fc.dha_pcie_bytes(1) == fc.param_bytes

    def test_layernorm_rereads_per_token(self):
        ln = layernorm("ln", 768, 384)
        assert ln.param_bytes == 2 * 768 * 4
        assert ln.dha_pcie_bytes(1) == 384 * ln.param_bytes

    def test_batchnorm_reads_once(self):
        bn = batchnorm2d("bn", 256, 14)
        assert bn.dha_pcie_bytes(1) == bn.param_bytes
        assert bn.dha_pcie_bytes(8) == bn.param_bytes

    def test_parameter_free_layers(self):
        for layer in (attention("a", 768, 12, 384), activation("r", 1000),
                      pooling("p", 1000), elementwise("e", 1000)):
            assert not layer.loadable
            assert layer.dha_pcie_bytes(4) == 0

    def test_attention_flops_quadratic_in_sequence(self):
        short = attention("a", 768, 12, 128)
        long = attention("b", 768, 12, 256)
        assert long.flops_per_item == pytest.approx(4 * short.flops_per_item)


class TestValidation:
    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(name="bad", kind=LayerKind.LINEAR, param_bytes=-1,
                      flops_per_item=0, act_bytes_per_item=0,
                      dha_min_bytes=0, dha_bytes_per_item=0)

    def test_parameter_free_with_dha_traffic_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(name="bad", kind=LayerKind.ACTIVATION, param_bytes=0,
                      flops_per_item=0, act_bytes_per_item=0,
                      dha_min_bytes=64, dha_bytes_per_item=0)

    def test_str_is_informative(self):
        fc = linear("fc1", 16, 16)
        assert "fc1" in str(fc)
        assert "linear" in str(fc)
