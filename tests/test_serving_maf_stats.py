"""Statistical validation of the synthetic MAF trace generator.

``synthesize_maf_trace`` is the workload behind Figures 13-15; these
tests check the *distributions* it promises, not individual arrivals:
class fractions, Zipf popularity skew, the normalized offered load, and
the agreement between the analytic per-bucket rates and the realized
(thinned) Poisson arrivals.  Stochastic assertions use wide bands
(several standard deviations) across multiple seeds, so they are
deterministic in practice.
"""

import collections

import numpy
import pytest

from repro.errors import WorkloadError
from repro.serving.maf import (
    MAFTraceConfig,
    SyntheticTrace,
    _zipf_weights,
    synthesize_maf_trace,
)

NAMES = [f"inst-{i}" for i in range(40)]
SEEDS = (0, 1, 2)


def quick_config(seed=0, **kwargs):
    kwargs.setdefault("duration", 600.0)
    kwargs.setdefault("target_rps", 80.0)
    return MAFTraceConfig(seed=seed, **kwargs)


@pytest.fixture(scope="module", params=SEEDS)
def trace(request) -> SyntheticTrace:
    return synthesize_maf_trace(NAMES, quick_config(seed=request.param))


class TestClassAssignment:
    def test_class_counts_match_fractions(self, trace):
        counts = collections.Counter(trace.instance_classes.values())
        n = len(NAMES)
        config = trace.config
        assert counts["sustained"] == round(n * config.sustained_fraction)
        assert counts["fluctuating"] == round(n * config.fluctuating_fraction)
        assert counts["spiky"] == round(n * config.spiky_fraction)
        assert sum(counts.values()) == n
        assert counts["rare"] == n - counts["sustained"] \
            - counts["fluctuating"] - counts["spiky"]

    def test_every_instance_classified(self, trace):
        assert set(trace.instance_classes) == set(NAMES)

    def test_overcommitted_fractions_rejected(self):
        with pytest.raises(WorkloadError, match="fractions"):
            MAFTraceConfig(sustained_fraction=0.5, fluctuating_fraction=0.4,
                           spiky_fraction=0.3)


class TestZipfPopularity:
    def test_weights_follow_power_law(self):
        rng = numpy.random.default_rng(0)
        exponent = 0.9
        weights = _zipf_weights(200, exponent, rng)
        ordered = numpy.sort(weights)[::-1]
        ranks = numpy.arange(1, 201, dtype=float)
        # Sorted weights must be exactly 1 / rank^s.
        assert ordered == pytest.approx(1.0 / ranks**exponent)

    def test_weights_are_a_permutation_over_instances(self):
        rng = numpy.random.default_rng(3)
        weights = _zipf_weights(50, 0.9, rng)
        assert len(numpy.unique(weights)) == 50

    def test_popularity_skew_shows_in_arrivals(self, trace):
        per_instance = collections.Counter(name for _, name
                                           in trace.arrivals)
        counts = numpy.sort(numpy.array(
            [per_instance[name] for name in NAMES]))[::-1]
        top_decile = counts[: len(NAMES) // 10].sum()
        # Zipf(0.9) over 40 instances: the top 10% of instances carry
        # far more than their 10% share of the traffic.
        assert top_decile > 0.2 * counts.sum()


class TestOfferedLoad:
    def test_mean_offered_load_is_normalized(self, trace):
        assert trace.offered_load.mean() == pytest.approx(
            trace.config.target_rps)

    def test_offered_load_nonnegative(self, trace):
        assert (trace.offered_load >= 0).all()

    def test_realized_rate_tracks_target(self, trace):
        # Thinned-Poisson total: expectation lambda = target_rps *
        # duration; allow a 5-sigma band.
        expected = trace.config.target_rps * trace.config.duration
        assert abs(trace.num_requests - expected) < 5 * numpy.sqrt(expected)
        assert trace.mean_rps == pytest.approx(
            trace.config.target_rps,
            rel=5 * numpy.sqrt(expected) / expected)

    def test_per_bucket_arrivals_match_rate_curve(self, trace):
        # Chi-square-style check: realized arrivals per bucket against
        # the analytic offered load, aggregated over coarse windows so
        # each window has enough mass for the normal approximation.
        config = trace.config
        times = numpy.array([t for t, _ in trace.arrivals])
        n_buckets = len(trace.bucket_times)
        realized = numpy.histogram(
            times, bins=n_buckets,
            range=(0.0, n_buckets * config.bucket_seconds))[0]
        expected = trace.offered_load * config.bucket_seconds
        window = 6  # 1-minute windows
        deviations = []
        for start in range(0, n_buckets - window + 1, window):
            lam = expected[start:start + window].sum()
            got = realized[start:start + window].sum()
            if lam > 20:
                deviations.append(abs(got - lam) / numpy.sqrt(lam))
        assert deviations, "no windows with enough expected mass"
        # Mean absolute z-score of a Poisson count is ~0.8; allow slack.
        assert numpy.mean(deviations) < 2.0
        assert max(deviations) < 6.0


class TestArrivalStream:
    def test_arrivals_sorted_and_in_range(self, trace):
        times = [t for t, _ in trace.arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < trace.config.duration for t in times)

    def test_arrivals_target_known_instances(self, trace):
        assert {name for _, name in trace.arrivals} <= set(NAMES)

    def test_same_seed_reproduces_trace(self):
        first = synthesize_maf_trace(NAMES, quick_config(seed=7))
        second = synthesize_maf_trace(NAMES, quick_config(seed=7))
        assert first.arrivals == second.arrivals

    def test_different_seeds_differ(self):
        first = synthesize_maf_trace(NAMES, quick_config(seed=7))
        second = synthesize_maf_trace(NAMES, quick_config(seed=8))
        assert first.arrivals != second.arrivals
