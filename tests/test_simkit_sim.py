"""Unit tests for the simulator core and processes."""

import pytest

from repro.simkit import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestProcess:
    def test_process_runs_and_returns(self, sim):
        def worker():
            yield sim.timeout(2.0)
            return "done"

        process = sim.process(worker())
        result = sim.run(process.done)
        assert result == "done"
        assert sim.now == 2.0
        assert not process.is_alive

    def test_yield_receives_event_value(self, sim):
        def worker():
            value = yield sim.timeout(1.0, "payload")
            return value

        assert sim.run(sim.process(worker()).done) == "payload"

    def test_processes_interleave(self, sim):
        trace = []

        def worker(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))
            yield sim.timeout(delay)
            trace.append((name, sim.now))

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.5))
        sim.run()
        assert trace == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0)]

    def test_waiting_on_another_process(self, sim):
        def child():
            yield sim.timeout(3.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run(sim.process(parent()).done) == 100

    def test_failed_event_raises_inside_process(self, sim):
        failing = sim.event()

        def worker():
            try:
                yield failing
            except ValueError as error:
                return f"caught {error}"

        process = sim.process(worker())
        failing.fail(ValueError("bad"))
        assert sim.run(process.done) == "caught bad"

    def test_uncaught_exception_fails_done_event(self, sim):
        def worker():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        process = sim.process(worker())
        with pytest.raises(KeyError):
            sim.run(process.done)

    def test_yield_of_non_event_fails_process(self, sim):
        def worker():
            yield "not an event"

        process = sim.process(worker())
        with pytest.raises(TypeError):
            sim.run(process.done)

    def test_interrupt_raises_in_process(self, sim):
        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(2.0)
            process.interrupt("reason")

        sim.process(interrupter())
        assert sim.run(process.done) == ("interrupted", "reason", 2.0)

    def test_interrupt_of_finished_process_rejected(self, sim):
        def worker():
            yield sim.timeout(1.0)

        process = sim.process(worker())
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_stale_wakeup_after_interrupt_ignored(self, sim):
        """The abandoned timeout must not resume the process later."""
        resumptions = []

        def worker():
            try:
                yield sim.timeout(10.0)
                resumptions.append("timeout")
            except Interrupt:
                resumptions.append("interrupt")
            yield sim.timeout(50.0)
            resumptions.append("second")

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt()

        sim.process(interrupter())
        sim.run()
        assert resumptions == ["interrupt", "second"]
        assert sim.now == 51.0


class TestRun:
    def test_run_until_time_sets_clock(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_past_time_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_until_event_that_never_fires(self, sim):
        with pytest.raises(RuntimeError, match="ran out of events"):
            sim.run(sim.event())

    def test_run_empty_simulation(self, sim):
        sim.run()
        assert sim.now == 0.0
