"""Unit tests for GPU memory accounting."""

import pytest

from repro.errors import OutOfGPUMemoryError
from repro.hw.memory import GPUMemory


@pytest.fixture
def memory():
    return GPUMemory(capacity_bytes=1000, device="gpu0", workspace_bytes=200)


class TestReservations:
    def test_reserve_and_release(self, memory):
        memory.reserve("model-a", 300)
        assert memory.used_bytes == 300
        assert memory.available_bytes == 500
        assert memory.holds("model-a")
        assert memory.release("model-a") == 300
        assert memory.used_bytes == 0

    def test_workspace_is_excluded_from_available(self, memory):
        assert memory.available_bytes == 800

    def test_over_capacity_raises(self, memory):
        memory.reserve("a", 700)
        with pytest.raises(OutOfGPUMemoryError) as err:
            memory.reserve("b", 200)
        assert err.value.requested == 200
        assert err.value.available == 100
        assert err.value.device == "gpu0"

    def test_exact_fit_succeeds(self, memory):
        memory.reserve("a", 800)
        assert memory.available_bytes == 0

    def test_duplicate_tag_rejected(self, memory):
        memory.reserve("a", 10)
        with pytest.raises(ValueError):
            memory.reserve("a", 10)

    def test_release_unknown_tag_raises(self, memory):
        with pytest.raises(KeyError):
            memory.release("ghost")

    def test_negative_reserve_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.reserve("a", -1)

    def test_zero_byte_reservation_allowed(self, memory):
        memory.reserve("empty", 0)
        assert memory.holds("empty")

    def test_tags_listing(self, memory):
        memory.reserve("a", 10)
        memory.reserve("b", 20)
        assert set(memory.tags()) == {"a", "b"}


class TestStaging:
    def test_staging_lives_in_workspace(self, memory):
        memory.reserve("model", 800)  # main pool full
        memory.reserve_staging("stage", 150)  # still fits in workspace
        assert memory.staging_used_bytes == 150
        assert memory.release_staging("stage") == 150

    def test_staging_over_workspace_raises(self, memory):
        with pytest.raises(OutOfGPUMemoryError):
            memory.reserve_staging("stage", 201)

    def test_staging_does_not_consume_main_pool(self, memory):
        memory.reserve_staging("stage", 200)
        assert memory.available_bytes == 800

    def test_duplicate_staging_tag_rejected(self, memory):
        memory.reserve_staging("s", 10)
        with pytest.raises(ValueError):
            memory.reserve_staging("s", 10)

    def test_release_unknown_staging_raises(self, memory):
        with pytest.raises(KeyError):
            memory.release_staging("ghost")


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            GPUMemory(0)

    def test_workspace_must_fit_in_capacity(self):
        with pytest.raises(ValueError):
            GPUMemory(100, workspace_bytes=100)
