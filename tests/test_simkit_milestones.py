"""Tests for progress-milestone flows (the load-stream bulk-flow idiom)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import FlowNetwork, Link, Simulator


@pytest.fixture
def sim():
    return Simulator()


def network_with_link(sim, bandwidth=100.0):
    return FlowNetwork(sim), Link("l", bandwidth)


class TestMilestones:
    def test_milestones_fire_at_byte_offsets(self, sim):
        network, link = network_with_link(sim)
        done, events = network.transfer_with_milestones(
            [link], 1000.0, [250.0, 500.0, 1000.0])
        fired = []
        for i, event in enumerate(events):
            event.add_callback(lambda e, i=i: fired.append((i, sim.now)))
        sim.run(done)
        assert fired == [(0, 2.5), (1, 5.0), (2, 10.0)]

    def test_milestone_equivalent_to_serial_copies(self, sim):
        """One bulk flow with milestones lands each boundary exactly when
        back-to-back transfers would complete."""
        network, link = network_with_link(sim)
        sizes = [100.0, 300.0, 50.0]
        offsets = [100.0, 400.0, 450.0]
        _, events = network.transfer_with_milestones([link], 450.0, offsets)
        times = {}
        for i, event in enumerate(events):
            event.add_callback(lambda e, i=i: times.__setitem__(i, sim.now))
        sim.run()
        serial = 0.0
        for i, size in enumerate(sizes):
            serial += size / link.bandwidth
            assert times[i] == pytest.approx(serial)

    def test_milestones_respect_contention(self, sim):
        network, link = network_with_link(sim)
        _, events = network.transfer_with_milestones([link], 1000.0, [500.0])
        network.transfer([link], 10_000.0)  # competing flow, same link
        time = {}
        events[0].add_callback(lambda e: time.__setitem__(0, sim.now))
        sim.run()
        # Fair share halves the rate: the 500-byte mark takes 10 s, not 5.
        assert time[0] == pytest.approx(10.0)

    def test_setup_delay_shifts_milestones(self, sim):
        network, link = network_with_link(sim)
        _, events = network.transfer_with_milestones(
            [link], 100.0, [100.0], setup_delay=3.0)
        sim.run()
        assert events[0].triggered
        assert sim.now == pytest.approx(4.0)

    def test_zero_byte_flow_fires_zero_offset_milestones(self, sim):
        network, link = network_with_link(sim)
        done, events = network.transfer_with_milestones([link], 0.0, [0.0])
        sim.run(done)
        assert events[0].triggered

    def test_zero_offset_milestone_fires_at_start_of_nonzero_flow(self, sim):
        """Regression: a milestone at the flow's current progress offset.

        A 0.0-byte milestone distance is a real, immediately-due target;
        collapsing it into "no milestone" by truthiness deferred the
        event to flow completion.
        """
        network, link = network_with_link(sim)
        times = {}
        done, events = network.transfer_with_milestones(
            [link], 1000.0, [0.0, 500.0])
        events[0].add_callback(lambda e: times.setdefault("zero", sim.now))
        events[1].add_callback(lambda e: times.setdefault("mid", sim.now))
        sim.run(done)
        assert times["zero"] == pytest.approx(0.0)
        assert times["mid"] == pytest.approx(5.0)

    def test_zero_offset_milestone_respects_setup_delay(self, sim):
        network, link = network_with_link(sim)
        times = {}
        done, events = network.transfer_with_milestones(
            [link], 1000.0, [0.0], setup_delay=2.0)
        events[0].add_callback(lambda e: times.setdefault("zero", sim.now))
        sim.run(done)
        assert times["zero"] == pytest.approx(2.0)

    def test_milestone_fires_on_time_when_joiner_lands_on_crossing(self, sim):
        """A flow joining exactly at a milestone crossing must not defer it."""
        network, link = network_with_link(sim)
        times = {}
        done, events = network.transfer_with_milestones(
            [link], 1000.0, [500.0])
        events[0].add_callback(lambda e: times.setdefault("mid", sim.now))
        # Joins at t=5.0, the instant the first flow's progress hits 500.
        sim._schedule_callback(
            lambda: network.transfer([link], 100.0), 5.0)
        sim.run(done)
        assert times["mid"] == pytest.approx(5.0)

    def test_unsorted_offsets_rejected(self, sim):
        network, link = network_with_link(sim)
        with pytest.raises(ValueError, match="ascending"):
            network.transfer_with_milestones([link], 100.0, [50.0, 20.0])

    def test_offset_beyond_size_rejected(self, sim):
        network, link = network_with_link(sim)
        with pytest.raises(ValueError, match="beyond"):
            network.transfer_with_milestones([link], 100.0, [150.0])

    def test_weight_applies_to_milestone_flows(self, sim):
        network, link = network_with_link(sim)
        _, events = network.transfer_with_milestones(
            [link], 500.0, [500.0], weight=1.0)
        network.transfer([link], 10_000.0, weight=3.0)
        time = {}
        events[0].add_callback(lambda e: time.__setitem__(0, sim.now))
        sim.run()
        # 1:3 weighting -> 25 B/s for the milestone flow.
        assert time[0] == pytest.approx(20.0)


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1,
                   max_size=8),
    bandwidth=st.floats(min_value=1.0, max_value=1e4),
)
def test_milestone_times_match_serial_copies_property(sizes, bandwidth):
    """For any layer-size sequence, milestone times equal the cumulative
    serial-transfer times (contention-free)."""
    sim = Simulator()
    network = FlowNetwork(sim)
    link = Link("l", bandwidth)
    offsets, total = [], 0.0
    for size in sizes:
        total += size
        offsets.append(total)
    _, events = network.transfer_with_milestones([link], total, offsets)
    times = {}
    for i, event in enumerate(events):
        event.add_callback(lambda e, i=i: times.__setitem__(i, sim.now))
    sim.run()
    cumulative = 0.0
    for i, size in enumerate(sizes):
        cumulative += size / bandwidth
        assert times[i] == pytest.approx(cumulative, rel=1e-9, abs=1e-9)
