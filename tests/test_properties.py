"""Cross-cutting property-based tests.

Two layers:

* hypothesis-driven invariants of the planner and timeline model that
  must hold for *any* layer cost structure;
* seeded-random sweeps (``property_seed`` / ``bandwidth_seed`` /
  ``cluster_seed``, parametrized in ``conftest.py``) over random models,
  machines and fault schedules — plan validity, bandwidth monotonicity,
  and cluster-wide request conservation.  ``--full-seeds`` runs the full
  200-seed sweep (nightly CI); the default is the quick subset.
"""

import dataclasses

import numpy
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.differential import random_model
from repro.core.deepplan import DeepPlan, Strategy
from repro.core.plan import ExecMethod, Partition
from repro.core.planner import LayerExecutionPlanner, initial_approach
from repro.core.serialization import plan_from_dict, plan_to_dict
from repro.core.stall import baseline_latency, compute_timeline
from repro.hw.specs import p3_8xlarge
from repro.models.costs import LayerCosts
from repro.models.layers import LayerKind

LOAD = ExecMethod.LOAD
DHA = ExecMethod.DHA


@st.composite
def layer_costs_list(draw, min_size=1, max_size=16):
    """Random but self-consistent per-layer cost tables."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    costs = []
    for i in range(n):
        loadable = draw(st.booleans())
        inmem = draw(st.floats(min_value=1e-5, max_value=0.01))
        if loadable:
            load = draw(st.floats(min_value=1e-5, max_value=0.02))
            # DHA is never faster than in-memory execution.
            dha = inmem + draw(st.floats(min_value=0.0, max_value=0.02))
            nbytes = max(1, int(load * 12e9))
        else:
            load, dha, nbytes = 0.0, inmem, 0
        costs.append(LayerCosts(
            name=f"l{i}", kind=LayerKind.LINEAR, load_time=load,
            exec_inmem=inmem, exec_dha=dha, load_pcie_bytes=nbytes,
            dha_pcie_bytes=nbytes))
    return costs


class TestTimelineProperties:
    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_pipeline_never_slower_than_baseline(self, costs):
        decisions = [LOAD if c.load_pcie_bytes else DHA for c in costs]
        pipelined = compute_timeline(costs, decisions).total_latency
        assert pipelined <= baseline_latency(costs) + 1e-9 + \
            len(costs) * 5e-6  # event-sync overhead allowance

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_timeline_monotone_and_consistent(self, costs):
        decisions = [LOAD if c.load_pcie_bytes else DHA for c in costs]
        timeline = compute_timeline(costs, decisions)
        previous_end = 0.0
        for timing in timeline:
            assert timing.start >= previous_end - 1e-12
            assert timing.end >= timing.start
            assert timing.stall >= 0
            previous_end = timing.end
        assert timeline.total_latency == pytest.approx(
            timeline.total_stall + timeline.total_execution)

    @settings(max_examples=80, deadline=None)
    @given(costs=layer_costs_list(min_size=4), split=st.integers(1, 3))
    def test_parallel_transmission_never_hurts(self, costs, split):
        """With a fast NVLink hop, splitting the load across two lanes
        can only help relative to one serial lane — up to the per-layer
        hop cost itself."""
        n = len(costs)
        hop = 1e-6
        boundary = max(1, min(n - 1, int(n * split / 4)))
        decisions = [LOAD if c.load_pcie_bytes else DHA for c in costs]
        serial = compute_timeline(costs, decisions).total_latency
        partitions = (Partition(0, 0, boundary), Partition(1, boundary, n))
        parallel = compute_timeline(costs, decisions, partitions,
                                    lambda b: hop).total_latency
        loaded_in_p2 = sum(1 for i in range(boundary, n)
                           if costs[i].load_pcie_bytes)
        assert parallel <= serial + loaded_in_p2 * hop + 1e-9


class TestPlannerProperties:
    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_algorithm1_never_worse_than_pure_pipeline(self, costs):
        planner = LayerExecutionPlanner(costs)
        planned = planner.plan()
        all_loaded = planner.all_loaded()
        t_planned = compute_timeline(costs, planned).total_latency
        t_loaded = compute_timeline(costs, all_loaded).total_latency
        assert t_planned <= t_loaded + 1e-9

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_decisions_are_legal(self, costs):
        planned = LayerExecutionPlanner(costs).plan()
        for cost, decision in zip(costs, planned):
            if cost.load_pcie_bytes == 0:
                assert decision is DHA

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list(min_size=4))
    def test_pt_planning_respects_partition_boundary(self, costs):
        n = len(costs)
        partitions = (Partition(0, 0, n // 2), Partition(1, n // 2, n))
        planner = LayerExecutionPlanner(costs, partitions, lambda b: 1e-6)
        planned = planner.plan()
        for i in range(n // 2, n):
            if costs[i].load_pcie_bytes:
                assert planned[i] is LOAD

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_initial_approach_is_per_layer_optimal(self, costs):
        decisions = initial_approach(costs)
        for cost, decision in zip(costs, decisions):
            if cost.load_pcie_bytes == 0:
                continue
            alone_load = cost.load_time + cost.exec_inmem
            if decision is DHA:
                assert cost.exec_dha <= alone_load
            else:
                assert cost.exec_dha >= alone_load


# ---------------------------------------------------------------------------
# Seeded-random sweeps (counts set in conftest.py; --full-seeds for nightly)
# ---------------------------------------------------------------------------

_PLANNER_CACHE: dict[str, DeepPlan] = {}


def _shared_planner() -> DeepPlan:
    """One noise-free planner over the paper's testbed, built lazily."""
    if "p3" not in _PLANNER_CACHE:
        _PLANNER_CACHE["p3"] = DeepPlan(p3_8xlarge(), noise=0.0)
    return _PLANNER_CACHE["p3"]


_STRATEGIES = (Strategy.BASELINE, Strategy.PIPESWITCH, Strategy.DHA,
               Strategy.PT, Strategy.PT_DHA)


class TestSeededPlanValidity:
    """Every plan over a random model is a valid, legal layer cover."""

    def test_plan_is_valid_cover(self, property_seed):
        planner = _shared_planner()
        model = random_model(property_seed)
        strategy = _STRATEGIES[property_seed % len(_STRATEGIES)]
        plan = planner.plan(model, strategy)

        # One decision per layer, and partitions tile the model exactly.
        assert len(plan.decisions) == len(model.layers)
        covered = []
        for partition in plan.partitions:
            covered.extend(range(partition.start, partition.stop))
        assert covered == list(range(len(model.layers)))

        for i, (layer, method) in enumerate(zip(model.layers,
                                                plan.decisions)):
            assert method in (LOAD, DHA)
            if not layer.loadable:
                # Parameter-free layers have nothing to load.
                assert method is DHA
            elif method is DHA:
                # DHA is only legal in the primary partition (Section
                # 4.3.3: secondary partitions are overridden to loads).
                assert plan.partition_of(i) == 0
            if not strategy.uses_dha and layer.loadable:
                assert method is LOAD

        # The planner's two latency predictions order correctly: a warm
        # hit never costs more than a cold start.
        assert plan.predicted_warm_latency <= plan.predicted_latency + 1e-12
        assert plan.provision_penalty >= 0.0

    def test_plan_round_trips_through_serialization(self, property_seed):
        planner = _shared_planner()
        model = random_model(property_seed)
        strategy = _STRATEGIES[property_seed % len(_STRATEGIES)]
        plan = planner.plan(model, strategy)
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.decisions == plan.decisions
        assert clone.partitions == plan.partitions
        assert clone.predicted_latency == plan.predicted_latency
        assert clone.predicted_warm_latency == plan.predicted_warm_latency
        assert [layer.name for layer in clone.model.layers] \
            == [layer.name for layer in plan.model.layers]


class TestBandwidthMonotonicity:
    """Faster PCIe never makes a plan's predicted latency worse."""

    def _latencies_over_bandwidth(self, seed, strategy):
        model = random_model(seed)
        spec = p3_8xlarge()
        latencies = []
        for factor in (0.5, 1.0, 2.0, 4.0):
            scaled = dataclasses.replace(
                spec,
                name=f"{spec.name}-x{factor}",
                pcie_lane_bandwidth=spec.pcie_lane_bandwidth * factor,
                pcie_uplink_bandwidth=spec.pcie_uplink_bandwidth * factor)
            planner = DeepPlan(scaled, noise=0.0)
            latencies.append(planner.plan(model, strategy).predicted_latency)
        return latencies

    def test_pipeswitch_monotone_in_pcie_bandwidth(self, bandwidth_seed):
        # Fixed decision vector (everything loaded): transfer times scale
        # down with bandwidth, so latency is exactly non-increasing.
        latencies = self._latencies_over_bandwidth(bandwidth_seed,
                                                   Strategy.PIPESWITCH)
        for slower, faster in zip(latencies, latencies[1:]):
            assert faster <= slower + 1e-12

    def test_dha_monotone_in_pcie_bandwidth(self, bandwidth_seed):
        # Algorithm 1 re-plans per bandwidth; the chosen plan can only
        # improve on pipeswitch at that bandwidth, so the envelope is
        # still non-increasing.
        latencies = self._latencies_over_bandwidth(bandwidth_seed,
                                                   Strategy.DHA)
        for slower, faster in zip(latencies, latencies[1:]):
            assert faster <= slower + 1e-9


class TestClusterConservation:
    """submitted == completed + dropped under random fault schedules."""

    def test_conservation_under_faults(self, cluster_seed):
        from repro.cluster import (
            Cluster,
            ClusterConfig,
            random_fault_schedule,
        )
        from repro.models.zoo import build_model
        from repro.serving.workload import PoissonWorkload

        rng = numpy.random.default_rng(cluster_seed)
        num_machines = int(rng.integers(2, 4))
        config = ClusterConfig(
            num_machines=num_machines,
            replication=int(rng.integers(1, num_machines + 1)),
            policy=("round-robin", "least-loaded",
                    "affinity")[cluster_seed % 3],
            max_retries=int(rng.integers(0, 4)),
            audit=True,
        )
        cluster = Cluster(p3_8xlarge(), config)
        names = cluster.deploy([(build_model("bert-base"),
                                 int(rng.integers(4, 13)))])
        rate = float(rng.uniform(40.0, 150.0))
        num_requests = int(rng.integers(60, 180))
        workload = PoissonWorkload(names, rate=rate,
                                   num_requests=num_requests,
                                   seed=cluster_seed)
        requests = workload.generate()
        duration = max(r.arrival_time for r in requests)
        schedule = random_fault_schedule(
            [m.name for m in cluster.machines],
            int(rng.integers(1, 4)), duration, seed=cluster_seed)

        # run() already raises AuditError on any violation; re-assert the
        # headline conservation law explicitly.
        report = cluster.run(requests, fault_schedule=schedule)
        assert report.submitted == num_requests
        assert report.completed + len(report.dropped) == report.submitted
        assert report.completed == len(report.metrics.records)
        served_total = sum(m.served for m in report.per_machine)
        assert served_total == report.completed


class TestDeviceFaultConservation:
    """submitted == completed + dropped + shed under mixed machine, GPU
    and link fault schedules, with the cluster auditor armed."""

    def test_conservation_under_device_faults(self, device_fault_seed):
        from repro.cluster import (
            Cluster,
            ClusterConfig,
            random_fault_schedule,
        )
        from repro.models.zoo import build_model
        from repro.serving.workload import PoissonWorkload
        from repro.units import MS

        seed = device_fault_seed
        rng = numpy.random.default_rng(seed + 7_000)
        num_machines = int(rng.integers(1, 4))
        config = ClusterConfig(
            num_machines=num_machines,
            replication=int(rng.integers(1, num_machines + 1)),
            policy=("round-robin", "least-loaded", "affinity")[seed % 3],
            max_retries=int(rng.integers(0, 4)),
            prewarm=bool(rng.integers(0, 2)),
            deadline=(float(rng.uniform(25.0, 80.0)) * MS
                      if rng.integers(0, 2) else None),
            audit=True,
        )
        cluster = Cluster(p3_8xlarge(), config)
        names = cluster.deploy([(build_model("bert-base"),
                                 int(rng.integers(4, 13)))])
        workload = PoissonWorkload(names,
                                   rate=float(rng.uniform(40.0, 250.0)),
                                   num_requests=int(rng.integers(60, 180)),
                                   seed=seed)
        requests = workload.generate()
        duration = max(r.arrival_time for r in requests)
        machine = cluster.machines[0].machine
        schedule = random_fault_schedule(
            [m.name for m in cluster.machines],
            int(rng.integers(2, 8)), duration, seed=seed,
            granularity="mixed", gpu_count=len(machine.gpus),
            link_names=machine.link_names())

        # run() already raises AuditError on any violation (including the
        # three-outcome exactly-once law); re-assert conservation here.
        report = cluster.run(requests, fault_schedule=schedule)
        assert report.submitted == len(requests)
        assert (report.completed + len(report.dropped) + len(report.shed)
                == report.submitted)
        assert report.completed == len(report.metrics.records)
        assert sum(m.served for m in report.per_machine) == report.completed
