"""Cross-cutting property-based tests (hypothesis).

These pin down invariants of the planner, the timeline model, and the
executor that must hold for *any* layer cost structure, not just the
paper's models.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecMethod, Partition
from repro.core.planner import LayerExecutionPlanner, initial_approach
from repro.core.stall import baseline_latency, compute_timeline
from repro.models.costs import LayerCosts
from repro.models.layers import LayerKind

LOAD = ExecMethod.LOAD
DHA = ExecMethod.DHA


@st.composite
def layer_costs_list(draw, min_size=1, max_size=16):
    """Random but self-consistent per-layer cost tables."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    costs = []
    for i in range(n):
        loadable = draw(st.booleans())
        inmem = draw(st.floats(min_value=1e-5, max_value=0.01))
        if loadable:
            load = draw(st.floats(min_value=1e-5, max_value=0.02))
            # DHA is never faster than in-memory execution.
            dha = inmem + draw(st.floats(min_value=0.0, max_value=0.02))
            nbytes = max(1, int(load * 12e9))
        else:
            load, dha, nbytes = 0.0, inmem, 0
        costs.append(LayerCosts(
            name=f"l{i}", kind=LayerKind.LINEAR, load_time=load,
            exec_inmem=inmem, exec_dha=dha, load_pcie_bytes=nbytes,
            dha_pcie_bytes=nbytes))
    return costs


class TestTimelineProperties:
    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_pipeline_never_slower_than_baseline(self, costs):
        decisions = [LOAD if c.load_pcie_bytes else DHA for c in costs]
        pipelined = compute_timeline(costs, decisions).total_latency
        assert pipelined <= baseline_latency(costs) + 1e-9 + \
            len(costs) * 5e-6  # event-sync overhead allowance

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_timeline_monotone_and_consistent(self, costs):
        decisions = [LOAD if c.load_pcie_bytes else DHA for c in costs]
        timeline = compute_timeline(costs, decisions)
        previous_end = 0.0
        for timing in timeline:
            assert timing.start >= previous_end - 1e-12
            assert timing.end >= timing.start
            assert timing.stall >= 0
            previous_end = timing.end
        assert timeline.total_latency == pytest.approx(
            timeline.total_stall + timeline.total_execution)

    @settings(max_examples=80, deadline=None)
    @given(costs=layer_costs_list(min_size=4), split=st.integers(1, 3))
    def test_parallel_transmission_never_hurts(self, costs, split):
        """With a fast NVLink hop, splitting the load across two lanes
        can only help relative to one serial lane — up to the per-layer
        hop cost itself."""
        n = len(costs)
        hop = 1e-6
        boundary = max(1, min(n - 1, int(n * split / 4)))
        decisions = [LOAD if c.load_pcie_bytes else DHA for c in costs]
        serial = compute_timeline(costs, decisions).total_latency
        partitions = (Partition(0, 0, boundary), Partition(1, boundary, n))
        parallel = compute_timeline(costs, decisions, partitions,
                                    lambda b: hop).total_latency
        loaded_in_p2 = sum(1 for i in range(boundary, n)
                           if costs[i].load_pcie_bytes)
        assert parallel <= serial + loaded_in_p2 * hop + 1e-9


class TestPlannerProperties:
    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_algorithm1_never_worse_than_pure_pipeline(self, costs):
        planner = LayerExecutionPlanner(costs)
        planned = planner.plan()
        all_loaded = planner.all_loaded()
        t_planned = compute_timeline(costs, planned).total_latency
        t_loaded = compute_timeline(costs, all_loaded).total_latency
        assert t_planned <= t_loaded + 1e-9

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_decisions_are_legal(self, costs):
        planned = LayerExecutionPlanner(costs).plan()
        for cost, decision in zip(costs, planned):
            if cost.load_pcie_bytes == 0:
                assert decision is DHA

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list(min_size=4))
    def test_pt_planning_respects_partition_boundary(self, costs):
        n = len(costs)
        partitions = (Partition(0, 0, n // 2), Partition(1, n // 2, n))
        planner = LayerExecutionPlanner(costs, partitions, lambda b: 1e-6)
        planned = planner.plan()
        for i in range(n // 2, n):
            if costs[i].load_pcie_bytes:
                assert planned[i] is LOAD

    @settings(max_examples=120, deadline=None)
    @given(costs=layer_costs_list())
    def test_initial_approach_is_per_layer_optimal(self, costs):
        decisions = initial_approach(costs)
        for cost, decision in zip(costs, decisions):
            if cost.load_pcie_bytes == 0:
                continue
            alone_load = cost.load_time + cost.exec_inmem
            if decision is DHA:
                assert cost.exec_dha <= alone_load
            else:
                assert cost.exec_dha >= alone_load
