"""Smoke tests: the shipped examples must run and say what they claim."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "plan[pt+dha]" in out
        assert "pipeswitch" in out
        assert "speedup" in out

    def test_plan_inspection(self):
        out = run_example("plan_inspection.py", "gpt2")
        assert "wte" in out
        assert "profiling cost" in out
        assert "partition 1" in out

    def test_custom_model(self):
        out = run_example("custom_model.py")
        assert "two-tower-ranker" in out
        assert "direct-host-access" in out

    def test_beyond_gpu_memory(self):
        out = run_example("beyond_gpu_memory.py")
        assert "memory budget" in out.lower()
        assert "routed experts" in out

    @pytest.mark.slow
    def test_trace_replay_short(self):
        out = run_example("trace_replay.py", "120")
        assert "Per-minute serving report" in out
        assert "goodput" in out
