"""Crash-tolerance of the process backend: supervision, recovery, chaos.

The tentpole property: a process-backend replay with worker faults
injected at randomized epochs — SIGKILLs, wedges, corrupted frames —
must either *recover onto the crash-free trajectory* (outcome
signatures, histograms and ledgers bit-identical to the single-process
oracle) or fail with a typed :class:`repro.shard.ShardFaultError`;
never hang, never silently diverge.  The recovery mechanism under test
is the command journal: shard state is a pure function of
``(WorkerInit, epoch commands)``, so respawning a dead worker and
replaying its journal fast-forwards it to the exact pre-crash boundary.
"""

import os
import signal
import time

import pytest

from repro.errors import WorkloadError
from repro.hw.specs import p3_8xlarge
from repro.shard import (
    ChaosEvent,
    ShardConfig,
    ShardDeterminismError,
    ShardRecoveryExhaustedError,
    ShardedReplay,
    WorkerCrashError,
    WorkerInternalError,
    WorkerProtocolError,
    WorkerTimeoutError,
    parse_chaos_spec,
    random_chaos_plan,
)
from repro.shard.replay import _ProcessShard, _stop_process
from repro.shard.supervision import CommandJournal
from repro.audit.shard import ShardLedger, resume_divergence
from repro.units import MS
from tests.test_shard_replay import random_scenario

#: Fast supervision knobs for tests: tight deadline, minimal backoff.
FAST = dict(worker_timeout=15.0, restart_backoff=0.01)


def build_replay(scenario, num_shards, backend="serial", **shard_kwargs):
    config, catalog, _requests, _faults = scenario
    replay = ShardedReplay(p3_8xlarge(), config, ShardConfig(
        num_shards=num_shards, backend=backend, epoch_length=100 * MS,
        **shard_kwargs))
    replay.deploy(catalog)
    return replay


def run_replay(scenario, num_shards, backend="serial", **shard_kwargs):
    replay = build_replay(scenario, num_shards, backend, **shard_kwargs)
    return replay.run(scenario[2], fault_schedule=scenario[3])


class TestChaosDifferential:
    """Crash-injected runs must reproduce the oracle bit for bit."""

    @pytest.mark.parametrize("pipelined", [True, False])
    def test_killed_and_corrupted_workers_recover_bit_identical(
            self, chaos_seed, pipelined):
        scenario = random_scenario(chaos_seed)
        num_shards = min(2, scenario[0].num_machines)
        oracle = run_replay(scenario, 1)
        # Stalls are exercised separately (they cost wall-clock time);
        # the sweep concentrates on kills and frame corruption.
        chaos = random_chaos_plan(3, num_shards, max_epoch=12,
                                  seed=chaos_seed,
                                  kinds=("kill", "corrupt"))
        report = run_replay(scenario, num_shards, backend="process",
                            pipelined=pipelined, chaos=chaos,
                            max_worker_restarts=len(chaos), **FAST)
        assert report.outcome_signature() == oracle.outcome_signature(), (
            f"chaos-injected replay diverged from the crash-free "
            f"oracle (seed {chaos_seed}, pipelined={pipelined})")
        assert report.metrics.histogram == oracle.metrics.histogram
        assert report.ledger == oracle.ledger
        merged = report.merged_histogram()
        assert merged.counts == oracle.metrics.histogram.counts
        assert merged.total == oracle.metrics.histogram.total
        for ledger in report.shard_ledgers:
            assert ledger.in_flight == 0

    def test_recovery_overhead_is_reported(self):
        scenario = random_scenario(7)
        num_shards = min(2, scenario[0].num_machines)
        chaos = (ChaosEvent(shard_id=0, epoch=2, kind="kill"),)
        report = run_replay(scenario, num_shards, backend="process",
                            chaos=chaos, max_worker_restarts=2, **FAST)
        assert report.worker_restarts == 1
        assert report.replayed_epochs >= 2
        summary = report.summary()
        assert summary["worker_restarts"] == 1.0
        assert summary["replayed_epochs"] == float(report.replayed_epochs)

    def test_stalled_worker_trips_the_deadline_and_recovers(self):
        """A wedge longer than worker_timeout is detected within the
        deadline (not a forever-hang) and recovery still lands on the
        oracle's trajectory."""
        scenario = random_scenario(4)
        num_shards = min(2, scenario[0].num_machines)
        oracle = run_replay(scenario, 1)
        chaos = (ChaosEvent(shard_id=0, epoch=1, kind="stall",
                            duration=60.0),)
        started = time.monotonic()
        report = run_replay(scenario, num_shards, backend="process",
                            chaos=chaos, max_worker_restarts=1,
                            worker_timeout=2.0, restart_backoff=0.01)
        elapsed = time.monotonic() - started
        assert report.outcome_signature() == oracle.outcome_signature()
        assert report.worker_restarts == 1
        # Far below the 60 s stall: the deadline fired, not the sleep.
        assert elapsed < 45.0


class TestTypedFaults:
    """Pre-existing failure modes now yield typed errors, not hangs."""

    def test_sigkill_exhausts_into_typed_error(self):
        scenario = random_scenario(5)
        num_shards = min(2, scenario[0].num_machines)
        chaos = (ChaosEvent(shard_id=0, epoch=1, kind="kill"),)
        with pytest.raises(ShardRecoveryExhaustedError) as info:
            run_replay(scenario, num_shards, backend="process",
                       chaos=chaos, max_worker_restarts=0, **FAST)
        assert info.value.restarts == 0
        assert isinstance(info.value.__cause__, WorkerCrashError)
        assert info.value.__cause__.shard_id == 0

    def test_corrupt_frame_exhausts_into_typed_error(self):
        scenario = random_scenario(5)
        num_shards = min(2, scenario[0].num_machines)
        chaos = (ChaosEvent(shard_id=0, epoch=1, kind="corrupt"),)
        with pytest.raises(ShardRecoveryExhaustedError) as info:
            run_replay(scenario, num_shards, backend="process",
                       chaos=chaos, max_worker_restarts=0, **FAST)
        assert isinstance(info.value.__cause__, WorkerProtocolError)

    def test_wedge_exhausts_into_timeout_error_within_deadline(self):
        scenario = random_scenario(5)
        num_shards = min(2, scenario[0].num_machines)
        chaos = (ChaosEvent(shard_id=0, epoch=1, kind="stall",
                            duration=120.0),)
        started = time.monotonic()
        with pytest.raises(ShardRecoveryExhaustedError) as info:
            run_replay(scenario, num_shards, backend="process",
                       chaos=chaos, max_worker_restarts=0,
                       worker_timeout=2.0, restart_backoff=0.01)
        assert time.monotonic() - started < 45.0
        assert isinstance(info.value.__cause__, WorkerTimeoutError)

    def test_serial_fallback_reruns_and_matches_the_oracle(self):
        scenario = random_scenario(6)
        num_shards = min(2, scenario[0].num_machines)
        oracle = run_replay(scenario, 1)
        chaos = (ChaosEvent(shard_id=0, epoch=0, kind="kill"),)
        report = run_replay(scenario, num_shards, backend="process",
                            chaos=chaos, max_worker_restarts=0,
                            serial_fallback=True, **FAST)
        assert report.serial_fallback
        assert report.backend == "serial"
        assert report.worker_restarts == 0
        assert report.outcome_signature() == oracle.outcome_signature()


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs /proc (Linux)")
class TestFdHygieneUnderChaos:
    def test_chaos_recovery_reclaims_fds(self):
        """Respawns allocate fresh pipes and sentinels; every aborted
        incarnation's descriptors must be released."""
        scenario = random_scenario(3)
        chaos = (ChaosEvent(shard_id=0, epoch=1, kind="kill"),
                 ChaosEvent(shard_id=0, epoch=3, kind="corrupt"))
        kwargs = dict(backend="process", chaos=chaos,
                      max_worker_restarts=3, **FAST)
        run_replay(scenario, 2, **kwargs)  # warm spawn machinery
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(3):
            report = run_replay(scenario, 2, **kwargs)
            assert report.worker_restarts == 2
        after = len(os.listdir("/proc/self/fd"))
        assert after - before <= 2, (
            f"chaos recovery leaked {after - before} fds over three "
            f"crash-and-respawn replays")


def _ignore_sigterm_entry(started) -> None:
    """Spawn target that masks SIGTERM and sleeps (a stuck child)."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    started.set()
    time.sleep(300)


class TestStopEscalation:
    def test_sigterm_ignoring_child_is_killed_not_leaked(self):
        import multiprocessing
        context = multiprocessing.get_context("spawn")
        started = context.Event()
        process = context.Process(target=_ignore_sigterm_entry,
                                  args=(started,), daemon=True)
        process.start()
        assert started.wait(timeout=60)
        begun = time.monotonic()
        exitcode = _stop_process(process, grace=0.5)
        elapsed = time.monotonic() - begun
        # terminate() was ignored; kill() cannot be.  -SIGKILL proves
        # the escalation ran, and the bounded grace proves we did not
        # sit in the old unbounded join.
        assert exitcode == -signal.SIGKILL
        assert elapsed < 30.0


class TestErrorTypePreservation:
    """Worker-side exceptions cross the pipe with their type intact."""

    def _one_shard(self, monkeypatch=None):
        import multiprocessing
        scenario = random_scenario(2)
        replay = build_replay(scenario, 1, backend="process",
                              max_worker_restarts=0, **FAST)
        init = replay._worker_inits(())[0]
        context = multiprocessing.get_context("spawn")
        return _ProcessShard(init, context, replay.shard)

    def test_workload_error_is_reraised_as_workload_error(self):
        shard = self._one_shard()
        try:
            # A frame with a bad magic makes the worker's unpack_epoch
            # raise WorkloadError; the error frame carries the class
            # name and the broker re-raises the same type.
            shard._conn.send(("epoch", b"XXXXGARBAGE"))
            with pytest.raises(WorkloadError, match="corrupt wire"):
                shard.collect_epoch()
        finally:
            shard.stop()

    def test_internal_bug_surfaces_as_worker_internal_error(self):
        shard = self._one_shard()
        try:
            # A non-bytes payload explodes in the worker with TypeError
            # — not a workload error, so it must surface as an internal
            # error carrying the original class name.
            shard._conn.send(("epoch", 12345))
            with pytest.raises(WorkerInternalError) as info:
                shard.collect_epoch()
            assert info.value.exception_type == "TypeError"
            assert "Traceback" in info.value.remote_traceback
        finally:
            shard.stop()


class TestChaosPlumbing:
    def test_parse_chaos_spec(self):
        events = parse_chaos_spec("kill@0:2, stall@1:3:5.0,corrupt@2:7")
        assert events == (
            ChaosEvent(shard_id=0, epoch=2, kind="kill"),
            ChaosEvent(shard_id=1, epoch=3, kind="stall", duration=5.0),
            ChaosEvent(shard_id=2, epoch=7, kind="corrupt"))
        assert parse_chaos_spec("") == ()
        with pytest.raises(WorkloadError, match="unknown chaos kind"):
            parse_chaos_spec("explode@0:1")
        with pytest.raises(WorkloadError, match="malformed"):
            parse_chaos_spec("kill@zero:1")

    def test_chaos_event_validation(self):
        with pytest.raises(WorkloadError, match="unknown chaos kind"):
            ChaosEvent(shard_id=0, epoch=0, kind="explode")
        with pytest.raises(WorkloadError, match="duration"):
            ChaosEvent(shard_id=0, epoch=0, kind="stall")

    def test_random_plan_is_deterministic_and_unique(self):
        plan = random_chaos_plan(6, num_shards=3, max_epoch=10, seed=11)
        assert plan == random_chaos_plan(6, num_shards=3, max_epoch=10,
                                         seed=11)
        targets = [(e.shard_id, e.epoch) for e in plan]
        assert len(set(targets)) == len(targets)
        assert all(e.shard_id < 3 and e.epoch < 10 for e in plan)

    def test_chaos_requires_process_backend(self):
        with pytest.raises(WorkloadError, match="process"):
            ShardConfig(num_shards=2, backend="serial",
                        chaos=(ChaosEvent(0, 0, "kill"),))

    def test_chaos_shard_id_must_exist(self):
        scenario = random_scenario(2)
        with pytest.raises(WorkloadError, match="targets shard"):
            build_replay(scenario, 1, backend="process",
                         chaos=(ChaosEvent(shard_id=5, epoch=0,
                                           kind="kill"),))

    def test_env_chaos_applies_to_process_backend_only(self, monkeypatch):
        scenario = random_scenario(2)
        monkeypatch.setenv("REPRO_SHARD_CHAOS", "kill@0:4")
        process = build_replay(scenario, 1, backend="process",
                               max_worker_restarts=1, **FAST)
        assert process._chaos == (ChaosEvent(shard_id=0, epoch=4,
                                             kind="kill"),)
        serial = build_replay(scenario, 1, backend="serial")
        assert serial._chaos == ()

    def test_respawn_init_strips_already_fired_events(self):
        import dataclasses as dc

        @dc.dataclass(frozen=True)
        class FakeInit:
            chaos: tuple = ()

        journal = CommandJournal(FakeInit(chaos=(
            ChaosEvent(0, 0, "kill"), ChaosEvent(0, 3, "corrupt"))))
        journal.record_command(b"cmd0")
        journal.record_command(b"cmd1")
        # Epoch-0 event may already have fired in the dead worker;
        # epoch-3 lies ahead and must survive into the respawn.
        assert journal.respawn_init().chaos == (
            ChaosEvent(0, 3, "corrupt"),)

    def test_resume_divergence_flags_counter_drift(self):
        a = ShardLedger(shard_id=1, scheduled=10, delivered=9,
                        completed=8, shed=1, orphaned=0)
        assert resume_divergence(a, a.copy(), shard_id=1, epoch=4) == []
        b = a.copy()
        b.completed = 7
        violations = resume_divergence(a, b, shard_id=1, epoch=4)
        assert len(violations) == 1
        assert "completed" in violations[0].detail
        assert ShardDeterminismError(1, "x")  # exported and raisable
