"""Spawn-safety of the sharded-replay plumbing (issue satellite).

The process backend starts workers with ``multiprocessing``'s *spawn*
method: nothing is inherited, so every object crossing the pipe — and
every seed a worker reconstructs state from — must survive pickling
bit-for-bit.  These tests pin that down at two levels:

* **wire level** — configs, fault schedules and the full
  :class:`~repro.shard.protocol.WorkerInit` round-trip through pickle
  unchanged;
* **stream level** — a real spawned child, handed only seeds,
  regenerates the exact fault schedule and Poisson arrival stream the
  parent built (the regression the per-machine
  :class:`~repro.cluster.faults.FaultInjector` refactor exists for).
"""

import multiprocessing
import pickle

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import FaultInjector, random_fault_schedule
from repro.hw.specs import p3_8xlarge
from repro.serving.server import ServerConfig
from repro.serving.workload import PoissonWorkload
from repro.shard import ShardConfig, WorkerInit
from repro.units import MS

NAMES = ("m0", "m1", "m2", "m3")


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestWirePicklability:
    def test_cluster_config_round_trips(self):
        config = ClusterConfig(num_machines=4, replication=2,
                               policy="least-loaded", max_retries=2,
                               retry_backoff=3 * MS, deadline=0.4,
                               audit=True)
        assert roundtrip(config) == config

    def test_shard_config_round_trips(self):
        shard = ShardConfig(num_shards=4, epoch_length=50 * MS,
                            router_latency=2 * MS, backend="process")
        assert roundtrip(shard) == shard

    @pytest.mark.parametrize("granularity,kwargs", [
        ("machine", {}),
        ("device", {"gpu_count": 4, "link_names": ("pcie", "nvlink")}),
        ("mixed", {"gpu_count": 4, "link_names": ("pcie",)}),
    ])
    def test_fault_schedules_round_trip(self, granularity, kwargs):
        schedule = random_fault_schedule(NAMES, 5, 30.0, seed=11,
                                         granularity=granularity, **kwargs)
        clone = roundtrip(schedule)
        assert clone == schedule
        # FaultEvent ordering must survive too — the injector relies on
        # sorted processing.
        assert sorted(clone) == sorted(schedule)

    def test_worker_init_round_trips(self):
        schedule = random_fault_schedule(NAMES[:2], 3, 20.0, seed=5,
                                         granularity="mixed", gpu_count=4)
        init = WorkerInit(
            shard_id=1,
            spec=p3_8xlarge(),
            machine_names=NAMES[:2],
            placements=(("m0", "resnet50#0", "resnet50"),
                        ("m1", "bert-base#0", "bert-base")),
            server=ServerConfig(slo=0.2, prewarm=False, audit=True),
            prewarm=True,
            audit=True,
            fault_schedule=tuple(schedule),
            watch_device_faults=True)
        assert roundtrip(init) == init

    def test_injector_accepts_unpickled_schedule(self):
        """An injector built from an unpickled schedule is equivalent.

        The injector itself holds a live target and never pickles; what
        must survive spawn is its *schedule*, which the worker replays
        against a fresh per-machine injector in the child.
        """
        schedule = random_fault_schedule(NAMES, 4, 25.0, seed=9,
                                         granularity="mixed", gpu_count=4,
                                         link_names=("pcie",))
        target = _StubTarget()
        original = FaultInjector(target, schedule)
        restored = FaultInjector(target, roundtrip(schedule))
        assert restored.schedule == original.schedule
        assert [dataclass_tuple(e) for e in restored.schedule] \
            == [dataclass_tuple(e) for e in original.schedule]

    def test_injector_validation_survives_round_trip(self):
        from repro.cluster.faults import FaultEvent
        from repro.errors import WorkloadError
        bad = [FaultEvent(time=1.0, machine_name="m0", action="gpu_fail",
                          gpu=99)]
        with pytest.raises(WorkloadError):
            FaultInjector(_StubTarget(), roundtrip(bad))


def dataclass_tuple(event):
    return (event.time, event.machine_name, event.action, event.gpu,
            event.link, event.factor)


class _StubHardware:
    gpu_count = 4

    def link_names(self):
        return ("pcie",)


class _StubMember:
    machine = _StubHardware()


class _StubTarget:
    """Just enough of the duck-typed fault target to validate schedules."""

    def machine(self, name):
        from repro.errors import WorkloadError
        if name not in NAMES:
            raise WorkloadError(f"unknown machine {name!r}")
        return _StubMember()


# -- in-child stream reconstruction -----------------------------------------------------
#
# Spawn re-imports this module in the child, so the helpers below must
# be module-level (lambdas/closures do not pickle).

def _child_fault_digest(seed):
    schedule = random_fault_schedule(NAMES, 6, 40.0, seed=seed,
                                     granularity="mixed", gpu_count=4,
                                     link_names=("pcie",))
    return tuple(dataclass_tuple(event) for event in schedule)


def _child_arrival_digest(seed):
    requests = PoissonWorkload(["resnet50#0", "bert-base#0"], rate=50.0,
                               num_requests=80, seed=seed).generate()
    return tuple((r.request_id, r.instance_name, r.arrival_time)
                 for r in requests)


def _run_in_spawned_child(function, *args):
    context = multiprocessing.get_context("spawn")
    with context.Pool(1) as pool:
        return pool.apply(function, args)


class TestInChildReconstruction:
    def test_child_rebuilds_identical_fault_schedule(self):
        seed = 1234
        parent = _child_fault_digest(seed)
        child = _run_in_spawned_child(_child_fault_digest, seed)
        assert child == parent

    def test_child_rebuilds_identical_arrival_stream(self):
        seed = 42
        parent = _child_arrival_digest(seed)
        child = _run_in_spawned_child(_child_arrival_digest, seed)
        assert child == parent

    def test_distinct_seeds_give_distinct_streams(self):
        assert _child_fault_digest(1) != _child_fault_digest(2)
        assert _child_arrival_digest(1) != _child_arrival_digest(2)
