"""Tests for workload generators and the synthetic MAF trace."""

import numpy
import pytest

from repro.errors import WorkloadError
from repro.serving.maf import MAFTraceConfig, synthesize_maf_trace
from repro.serving.workload import PoissonWorkload, Request, TraceWorkload


class TestPoissonWorkload:
    def test_rate_is_respected(self):
        workload = PoissonWorkload(["a", "b"], rate=100.0, num_requests=5000,
                                   seed=0)
        requests = workload.generate()
        duration = requests[-1].arrival_time
        assert 5000 / duration == pytest.approx(100.0, rel=0.1)

    def test_arrivals_are_sorted_and_unique_ids(self):
        requests = PoissonWorkload(["a"], 10.0, 100).generate()
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert len({r.request_id for r in requests}) == 100

    def test_instances_roughly_uniform(self):
        names = [f"i{k}" for k in range(10)]
        requests = PoissonWorkload(names, 50.0, 10_000, seed=3).generate()
        counts = numpy.array([sum(r.instance_name == n for r in requests)
                              for n in names])
        assert counts.min() > 0.8 * counts.mean()

    def test_deterministic_per_seed(self):
        a = PoissonWorkload(["x"], 10.0, 50, seed=5).generate()
        b = PoissonWorkload(["x"], 10.0, 50, seed=5).generate()
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PoissonWorkload(["a"], 0.0, 10)
        with pytest.raises(WorkloadError):
            PoissonWorkload(["a"], 1.0, 0)
        with pytest.raises(WorkloadError):
            PoissonWorkload([], 1.0, 10)

    def test_request_latency_requires_completion(self):
        request = Request(0, "a", 0.0)
        with pytest.raises(WorkloadError):
            request.latency


class TestTraceWorkload:
    def test_replays_in_time_order(self):
        trace = TraceWorkload([(2.0, "b"), (1.0, "a")])
        requests = trace.generate()
        assert [r.instance_name for r in requests] == ["a", "b"]
        assert trace.duration == 2.0
        assert trace.num_requests == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload([])


class TestMAFTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        names = [f"fn{k}" for k in range(90)]
        config = MAFTraceConfig(duration=1800.0, target_rps=150.0, seed=4)
        return synthesize_maf_trace(names, config)

    def test_mean_rate_matches_target(self, trace):
        assert trace.mean_rps == pytest.approx(150.0, rel=0.05)

    def test_arrivals_sorted_within_duration(self, trace):
        times = [t for t, _ in trace.arrivals]
        assert times == sorted(times)
        assert times[-1] < trace.config.duration

    def test_all_behaviour_classes_present(self, trace):
        classes = set(trace.instance_classes.values())
        assert classes == {"sustained", "fluctuating", "spiky", "rare"}

    def test_load_fluctuates(self, trace):
        """The paper's trace shows fluctuations and spikes: the offered
        load must vary substantially around its mean."""
        load = trace.offered_load
        assert load.max() > 1.2 * load.mean()
        assert load.min() < 0.9 * load.mean()

    def test_popularity_is_heavy_tailed(self, trace):
        counts = {}
        for _, name in trace.arrivals:
            counts[name] = counts.get(name, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        top10 = sum(ordered[:9])
        assert top10 > 0.3 * trace.num_requests

    def test_deterministic_per_seed(self):
        names = ["a", "b", "c"]
        config = MAFTraceConfig(duration=600, target_rps=20, seed=1)
        t1 = synthesize_maf_trace(names, config)
        t2 = synthesize_maf_trace(names, config)
        assert t1.arrivals == t2.arrivals

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MAFTraceConfig(duration=-1)
        with pytest.raises(WorkloadError):
            MAFTraceConfig(sustained_fraction=0.9, fluctuating_fraction=0.9)
        with pytest.raises(WorkloadError):
            synthesize_maf_trace([], MAFTraceConfig(duration=60))
