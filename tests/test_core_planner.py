"""Unit tests for Algorithm 1 and the initial-approach strawman."""

import pytest

from repro.core.plan import ExecMethod, Partition
from repro.core.planner import LayerExecutionPlanner, initial_approach
from repro.core.profiler import LayerProfiler
from repro.core.stall import compute_timeline
from repro.hw.specs import p3_8xlarge
from repro.models import CostModel, build_model
from repro.models.costs import LayerCosts
from repro.models.layers import LayerKind

LOAD = ExecMethod.LOAD
DHA = ExecMethod.DHA


def cost(name="l", load=1.0, inmem=0.5, dha=0.8, nbytes=100,
         kind=LayerKind.LINEAR):
    return LayerCosts(name=name, kind=kind, load_time=load, exec_inmem=inmem,
                      exec_dha=dha, load_pcie_bytes=nbytes,
                      dha_pcie_bytes=nbytes)


def free_cost(inmem=0.5):
    return LayerCosts(name="free", kind=LayerKind.ACTIVATION, load_time=0.0,
                      exec_inmem=inmem, exec_dha=inmem, load_pcie_bytes=0,
                      dha_pcie_bytes=0)


class TestInitialApproach:
    def test_prefers_dha_when_it_beats_load_then_execute(self):
        costs = [cost(load=5.0, inmem=0.1, dha=0.3),   # DHA wins
                 cost(load=0.1, inmem=0.1, dha=5.0)]   # load wins
        assert initial_approach(costs) == [DHA, LOAD]

    def test_parameter_free_layers_are_dha(self):
        assert initial_approach([free_cost()]) == [DHA]


class TestAlgorithm1:
    def test_no_stall_means_no_conversion(self):
        """Compute-bound pipeline: loads hidden, keep everything loaded."""
        costs = [cost(load=0.1, inmem=2.0, dha=2.5) for _ in range(4)]
        decisions = LayerExecutionPlanner(costs).plan()
        # Layer 0 always stalls on its own load; with dha barely more
        # expensive than the stall it may convert; the rest must stay.
        assert decisions[1:] == [LOAD] * 3

    def test_converts_first_layer_to_kill_its_own_stall(self):
        """Paper Figure 7: L1 executes by DHA instead of stalling."""
        costs = [cost(load=3.0, inmem=1.0, dha=1.2),
                 cost(load=1.0, inmem=2.0, dha=9.9)]
        decisions = LayerExecutionPlanner(costs).plan()
        assert decisions[0] is DHA
        assert decisions[1] is LOAD

    def test_converts_earlier_layer_to_advance_later_load(self):
        """Paper Figure 8: converting L_{n-1} starts L_n's load earlier."""
        costs = [
            cost("a", load=1.0, inmem=1.0, dha=1.1),
            cost("b", load=4.0, inmem=1.0, dha=99.0),  # big, stalls
        ]
        decisions = LayerExecutionPlanner(costs).plan()
        assert decisions[0] is DHA   # cheap conversion
        assert decisions[1] is LOAD  # too expensive to convert itself

    def test_cheapest_perfdiff_converted_first(self):
        """When one conversion suffices, the smallest-PerfDiff candidate
        is taken even though it comes later in layer order."""
        costs = [
            cost("pricey", load=1.0, inmem=1.0, dha=3.0),   # PerfDiff 2.0
            cost("cheap", load=1.0, inmem=1.0, dha=1.2),    # PerfDiff 0.2
            cost("big", load=3.0, inmem=0.5, dha=99.0),     # stalls
        ]
        decisions = LayerExecutionPlanner(costs).plan()
        assert decisions == [LOAD, DHA, LOAD]

    def test_never_converts_when_perfdiff_exceeds_stall(self):
        costs = [
            cost("a", load=0.2, inmem=0.1, dha=9.0),
            cost("b", load=0.3, inmem=0.1, dha=9.0),
        ]
        decisions = LayerExecutionPlanner(costs).plan()
        assert decisions == [LOAD, LOAD]

    def test_planner_never_increases_predicted_latency(self):
        """On every real model, Algorithm 1's plan must be at least as
        fast as pure pipelining (its own starting point)."""
        cm = CostModel(p3_8xlarge())
        profiler = LayerProfiler(cm, noise=0.0)
        for name in ("resnet50", "bert-base", "gpt2"):
            model = build_model(name)
            costs = profiler.profile(model).layers
            planner = LayerExecutionPlanner(costs)
            planned = planner.plan()
            all_loaded = planner.all_loaded()
            t_planned = compute_timeline(costs, planned).total_latency
            t_loaded = compute_timeline(costs, all_loaded).total_latency
            assert t_planned <= t_loaded * (1 + 1e-9), name

    def test_real_bert_converts_embeddings(self):
        cm = CostModel(p3_8xlarge())
        model = build_model("bert-base")
        costs = LayerProfiler(cm, noise=0.0).profile(model).layers
        decisions = LayerExecutionPlanner(costs).plan()
        word = model.layer_index("embeddings.word")
        assert decisions[word] is DHA

    def test_real_bert_keeps_ffn_loaded(self):
        cm = CostModel(p3_8xlarge())
        model = build_model("bert-base")
        costs = LayerProfiler(cm, noise=0.0).profile(model).layers
        decisions = LayerExecutionPlanner(costs).plan()
        for i in model.loadable_indices():
            if model.layers[i].kind is LayerKind.LINEAR:
                assert decisions[i] is LOAD, model.layers[i].name


class TestPartitionRestriction:
    def test_only_first_partition_converted(self):
        costs = [cost(load=3.0, inmem=0.1, dha=0.2) for _ in range(6)]
        partitions = (Partition(0, 0, 3), Partition(1, 3, 6))
        planner = LayerExecutionPlanner(costs, partitions, lambda b: 0.01)
        decisions = planner.plan()
        assert all(d is LOAD for d in decisions[3:])

    def test_gpt2_plan_matches_paper_table3b(self):
        """DeepPlan loads GPT-2's small position embedding (its load is
        hidden while wte executes via DHA) but keeps wte host-side —
        exactly the Table 3b row: X O O O O."""
        cm = CostModel(p3_8xlarge())
        model = build_model("gpt2")
        costs = LayerProfiler(cm, noise=0.0).profile(model).layers
        decisions = LayerExecutionPlanner(costs).plan()
        front = model.loadable_indices()[:5]
        marks = ["O" if decisions[i] is LOAD else "X" for i in front]
        assert marks == ["X", "O", "O", "O", "O"]

    def test_resnet101_pipeline_awareness_differs_from_initial_approach(self):
        """Paper Table 3a: the per-layer comparison picks DHA for
        mid-network convolutions, but DeepPlan loads some of them because
        their load latency is hidden by pipelining."""
        cm = CostModel(p3_8xlarge())
        model = build_model("resnet101")
        # The strawman benchmarks each layer in isolation; DeepPlan plans
        # over the pipelined profile.
        isolated = cm.model_costs(model, 1)
        naive = initial_approach(isolated)
        costs = LayerProfiler(cm, noise=0.0).profile(model).layers
        planned = LayerExecutionPlanner(costs).plan()
        conv_indices = [i for i in model.loadable_indices()
                        if model.layers[i].kind is LayerKind.CONV]
        reconsidered = [i for i in conv_indices
                        if naive[i] is DHA and planned[i] is LOAD]
        assert reconsidered, \
            "expected some convs to be DHA per-layer but loaded by DeepPlan"
