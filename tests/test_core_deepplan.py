"""Unit tests for the DeepPlan facade."""

import pytest

from repro.core import DeepPlan, ExecMethod, Strategy
from repro.errors import PlanError
from repro.hw.specs import a5000x2, p3_8xlarge
from repro.models import build_model


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


class TestStrategyParsing:
    def test_parse_strings(self):
        assert Strategy.parse("pt+dha") is Strategy.PT_DHA
        assert Strategy.parse("PIPESWITCH") is Strategy.PIPESWITCH
        assert Strategy.parse(Strategy.DHA) is Strategy.DHA

    def test_unknown_strategy_raises(self):
        with pytest.raises(PlanError, match="options"):
            Strategy.parse("magic")

    def test_flags(self):
        assert Strategy.PT_DHA.uses_dha
        assert Strategy.PT_DHA.uses_parallel_transmission
        assert not Strategy.PIPESWITCH.uses_dha
        assert not Strategy.DHA.uses_parallel_transmission


class TestPlanGeneration:
    def test_baseline_and_pipeswitch_load_everything(self, planner, bert):
        for strategy in (Strategy.BASELINE, Strategy.PIPESWITCH):
            plan = planner.plan(bert, strategy)
            assert plan.gpu_resident_bytes == bert.param_bytes
            assert plan.num_partitions == 1

    def test_dha_leaves_embeddings_host_side(self, planner, bert):
        plan = planner.plan(bert, Strategy.DHA)
        word = bert.layer_index("embeddings.word")
        assert plan.method(word) is ExecMethod.DHA
        assert plan.host_resident_bytes > 80 * 1024 * 1024

    def test_pt_uses_two_partitions_on_p3(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT)
        assert plan.num_partitions == 2
        assert plan.gpu_resident_bytes == bert.param_bytes

    def test_pt_dha_combines_both(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT_DHA)
        assert plan.num_partitions == 2
        assert plan.host_resident_bytes > 0

    def test_predicted_latency_ordering(self, planner, bert):
        """baseline >= pipeswitch >= dha >= pt+dha for a load-bound model."""
        latencies = [planner.plan(bert, s).predicted_latency
                     for s in (Strategy.BASELINE, Strategy.PIPESWITCH,
                               Strategy.DHA, Strategy.PT_DHA)]
        assert latencies == sorted(latencies, reverse=True)

    def test_plans_are_cached_per_model(self, planner, bert):
        first = planner.profile(bert)
        second = planner.profile(bert)
        assert first is second

    def test_explicit_num_gpus_validated(self, planner, bert):
        with pytest.raises(PlanError, match="at most"):
            planner.plan(bert, Strategy.PT, num_gpus=3)
        with pytest.raises(PlanError, match=">= 2"):
            planner.plan(bert, Strategy.PT, num_gpus=1)

    def test_strategy_accepts_strings(self, planner, bert):
        plan = planner.plan(bert, "pt+dha")
        assert plan.strategy == "pt+dha"


class TestSecondaryGPUs:
    def test_secondary_for_pt_plan(self, planner, bert):
        plan = planner.plan(bert, Strategy.PT)
        assert planner.secondary_gpus(0, plan) == [2]
        assert planner.secondary_gpus(3, plan) == [1]

    def test_no_secondaries_for_single_partition(self, planner, bert):
        plan = planner.plan(bert, Strategy.DHA)
        assert planner.secondary_gpus(0, plan) == []


class TestOtherMachines:
    def test_a5000_supports_pt(self, bert):
        planner = DeepPlan(a5000x2(), noise=0.0)
        plan = planner.plan(bert, Strategy.PT_DHA)
        assert plan.num_partitions == 2
        assert planner.secondary_gpus(0, plan) == [1]

    def test_pcie4_cold_start_is_faster(self, bert):
        """Section 5.4: PCIe 4.0 shrinks provisioning latency."""
        v100 = DeepPlan(p3_8xlarge(), noise=0.0)
        a5000 = DeepPlan(a5000x2(), noise=0.0)
        assert (a5000.plan(bert, Strategy.PIPESWITCH).predicted_latency
                < v100.plan(bert, Strategy.PIPESWITCH).predicted_latency)


class TestBestPlan:
    def test_best_plan_returns_minimum_predicted(self, planner, bert):
        best = planner.best_plan(bert)
        for strategy in (Strategy.PIPESWITCH, Strategy.DHA, Strategy.PT,
                         Strategy.PT_DHA):
            assert best.predicted_latency <= \
                planner.plan(bert, strategy).predicted_latency + 1e-12

    def test_best_plan_for_bert_is_pt_dha(self, planner, bert):
        assert planner.best_plan(bert).strategy == "pt+dha"

    def test_best_plan_avoids_pt_when_it_adds_cost(self, planner):
        """An embedding-dominated model loads almost nothing; parallel
        transmission's NVLink hop is pure overhead, so pure DHA wins."""
        from repro.models.graph import ModelSpec
        from repro.models.layers import embedding, linear

        model = ModelSpec(
            name="embedding-heavy",
            layers=(embedding("table", 3_000_000, 64, 32),
                    linear("head", 64, 8, 32)),
            seq_len=32, family="custom")
        best = planner.best_plan(model)
        assert best.strategy == "dha"
