"""Wire-protocol round trips and drive-mode determinism (issue satellites).

Two properties of the pipelined shard engine, pinned independently of
the end-to-end differential oracle:

* **wire level** — the columnar epoch/outcome encoding rebuilds the
  exact dataclasses the serial oracle passes around (float timestamps
  to the last bit, row order verbatim) and rejects frames from a
  different protocol generation outright;
* **drive level** — pipelined and lock-step drives execute the same
  route-ahead protocol, so every scenario must produce bit-identical
  outcome signatures in both modes, with adaptive epochs on or off.
  (Adaptive epochs define a *different* epoch grid than fixed ones, so
  comparisons are always same-mode.)

The process-backend case also doubles as the fd-leak regression test:
back-to-back replays must not accumulate pipe or sentinel descriptors.
"""

import gc
import os

import numpy
import pytest

from repro.audit.shard import ShardLedger
from repro.errors import WorkloadError
from repro.hw.specs import p3_8xlarge
from repro.serving.metrics import RequestRecord
from repro.shard import ShardConfig, ShardedReplay
from repro.shard.protocol import (
    WIRE_VERSION,
    AttemptFailure,
    Completion,
    Delivery,
    EpochOutcome,
    MachineSnapshot,
    ShedNotice,
    pack_epoch,
    pack_heartbeat,
    pack_outcome,
    unpack_epoch,
    unpack_heartbeat,
    unpack_outcome,
)
from repro.units import MS
from tests.test_shard_replay import random_scenario

MACHINES = tuple(f"m{i}" for i in range(5))
INSTANCES = tuple(f"model-{i}#{j}" for i in range(3) for j in range(2))
QOS = ("standard", "batch", "premium")


def random_delivery(rng) -> Delivery:
    return Delivery(
        request_id=int(rng.integers(0, 1 << 62)),
        instance_name=str(rng.choice(INSTANCES)),
        machine_name=str(rng.choice(MACHINES)),
        arrival_time=float(rng.uniform(0.0, 1e4)),
        submitted_at=float(rng.uniform(0.0, 1e4)),
        deliver_at=float(rng.uniform(0.0, 1e4)),
        batch_size=int(rng.integers(1, 64)),
        qos=str(rng.choice(QOS)),
        attempt=int(rng.integers(0, 5)))


def random_outcome(rng, rows: int) -> EpochOutcome:
    completions = [
        Completion(
            machine_name=str(rng.choice(MACHINES)),
            record=RequestRecord(
                request_id=int(rng.integers(0, 1 << 62)),
                instance_name=str(rng.choice(INSTANCES)),
                arrival_time=float(rng.uniform(0.0, 1e4)),
                submitted_at=float(rng.uniform(0.0, 1e4)),
                started_at=float(rng.uniform(0.0, 1e4)),
                finished_at=float(rng.uniform(0.0, 1e4)),
                cold_start=bool(rng.integers(2)),
                degraded=bool(rng.integers(2)),
                qos=str(rng.choice(QOS))))
        for _ in range(rows)]
    failures = [
        AttemptFailure(request_id=int(rng.integers(0, 1 << 62)),
                       time=float(rng.uniform(0.0, 1e4)),
                       where=str(rng.choice(MACHINES)))
        for _ in range(int(rng.integers(0, 4)))]
    sheds = [
        ShedNotice(request_id=int(rng.integers(0, 1 << 62)),
                   machine_name=str(rng.choice(MACHINES)),
                   time=float(rng.uniform(0.0, 1e4)))
        for _ in range(int(rng.integers(0, 4)))]
    snapshots = [
        MachineSnapshot(
            name=name,
            state=str(rng.choice(["active", "crashed", "recovering"])),
            warm=frozenset(
                str(s) for s in rng.choice(
                    INSTANCES, size=int(rng.integers(0, 4)),
                    replace=False)),
            outstanding=int(rng.integers(0, 1000)))
        for name in MACHINES[:int(rng.integers(1, len(MACHINES)))]]
    ledger = ShardLedger(
        shard_id=int(rng.integers(0, 8)),
        scheduled=int(rng.integers(0, 10_000)),
        delivered=int(rng.integers(0, 10_000)),
        completed=int(rng.integers(0, 10_000)),
        shed=int(rng.integers(0, 100)),
        orphaned=int(rng.integers(0, 100)))
    return EpochOutcome(
        shard_id=ledger.shard_id,
        horizon=float(rng.uniform(0.0, 1e4)),
        completions=completions,
        failures=failures,
        sheds=sheds,
        snapshots=snapshots,
        ledger=ledger)


class TestWireRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_epochs_round_trip_bit_exact(self, seed):
        rng = numpy.random.default_rng(seed)
        deliveries = [random_delivery(rng)
                      for _ in range(int(rng.integers(1, 40)))]
        horizon = float(rng.uniform(0.0, 1e4))
        got_horizon, got = unpack_epoch(pack_epoch(horizon, deliveries))
        # == on floats is bit-exact here: <f8> columns store the exact
        # IEEE-754 doubles, so any widening/narrowing would show up.
        assert got_horizon == horizon
        assert got == deliveries

    @pytest.mark.parametrize("seed", range(20))
    def test_random_outcomes_round_trip_bit_exact(self, seed):
        rng = numpy.random.default_rng(100 + seed)
        outcome = random_outcome(rng, rows=int(rng.integers(1, 40)))
        got = unpack_outcome(pack_outcome(outcome))
        assert got == outcome

    def test_empty_epoch_and_outcome(self):
        horizon, deliveries = unpack_epoch(pack_epoch(0.25, []))
        assert (horizon, deliveries) == (0.25, [])
        empty = EpochOutcome(shard_id=3, horizon=1.5, completions=[],
                             failures=[], sheds=[], snapshots=[],
                             ledger=ShardLedger(shard_id=3))
        assert unpack_outcome(pack_outcome(empty)) == empty

    def test_large_batch_round_trips(self):
        rng = numpy.random.default_rng(7)
        deliveries = [random_delivery(rng) for _ in range(5000)]
        _, got = unpack_epoch(pack_epoch(123.456, deliveries))
        assert got == deliveries

    def test_string_table_deduplicates(self):
        rng = numpy.random.default_rng(9)
        deliveries = [random_delivery(rng) for _ in range(200)]
        packed = pack_epoch(1.0, deliveries)
        # 200 rows over <= 14 distinct strings: everything beyond the
        # fixed-width columns is the one deduplicated table, so the
        # frame overhead must not scale with the per-row string copies
        # (3.5 KiB here) a naive encoding would carry.
        from repro.shard.protocol import _DELIVERY_DTYPE
        overhead = len(packed) - len(deliveries) * _DELIVERY_DTYPE.itemsize
        assert overhead < 300

    def test_version_mismatch_is_rejected(self):
        packed = bytearray(pack_epoch(1.0, []))
        packed[4:6] = (WIRE_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(WorkloadError, match="version mismatch"):
            unpack_epoch(bytes(packed))

    def test_bad_magic_is_rejected(self):
        packed = b"XXXX" + pack_epoch(1.0, [])[4:]
        with pytest.raises(WorkloadError, match="bad magic"):
            unpack_epoch(packed)

    def test_kind_confusion_is_rejected(self):
        epoch = pack_epoch(1.0, [])
        outcome = pack_outcome(EpochOutcome(
            shard_id=0, horizon=1.0, completions=[], failures=[],
            sheds=[], snapshots=[], ledger=ShardLedger()))
        with pytest.raises(WorkloadError, match="kind"):
            unpack_outcome(epoch)
        with pytest.raises(WorkloadError, match="kind"):
            unpack_epoch(outcome)

    def test_truncated_header_is_rejected(self):
        with pytest.raises(WorkloadError, match="shorter"):
            unpack_epoch(pack_epoch(1.0, [])[:3])

    def test_heartbeat_round_trips(self):
        for shard_id, epoch in ((0, 0), (7, 12), (1 << 40, 1 << 50)):
            assert unpack_heartbeat(pack_heartbeat(shard_id, epoch)) \
                == (shard_id, epoch)

    def test_heartbeat_rejects_other_kinds_and_truncation(self):
        with pytest.raises(WorkloadError, match="kind"):
            unpack_heartbeat(pack_epoch(1.0, []))
        with pytest.raises(WorkloadError, match="kind"):
            unpack_epoch(pack_heartbeat(0, 0))
        with pytest.raises(WorkloadError):
            unpack_heartbeat(pack_heartbeat(3, 9)[:-4])


def run_modes(scenario, num_shards, backend="serial", **shard_kwargs):
    config, catalog, requests, faults = scenario
    replay = ShardedReplay(p3_8xlarge(), config, ShardConfig(
        num_shards=num_shards, backend=backend, epoch_length=100 * MS,
        **shard_kwargs))
    replay.deploy(catalog)
    return replay.run(requests, fault_schedule=faults)


class TestPipeliningDeterminism:
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_pipelined_matches_lockstep(self, shard_seed, adaptive):
        """Route-ahead pipelining is an execution detail, not a protocol
        change: both drive modes must land on identical outcomes for
        every shard count, with adaptive epochs on or off."""
        scenario = random_scenario(shard_seed)
        config = scenario[0]
        signature = None
        for num_shards in (1, 2, 4):
            if num_shards > config.num_machines:
                continue
            pipelined = run_modes(scenario, num_shards,
                                  pipelined=True, adaptive_epochs=adaptive)
            lockstep = run_modes(scenario, num_shards,
                                 pipelined=False, adaptive_epochs=adaptive)
            assert (pipelined.outcome_signature()
                    == lockstep.outcome_signature()), (
                f"drive modes diverged at {num_shards} shards "
                f"(seed {shard_seed}, adaptive={adaptive})")
            assert pipelined.ledger == lockstep.ledger
            assert pipelined.epochs == lockstep.epochs
            if signature is None:
                signature = pipelined.outcome_signature()
            else:
                assert pipelined.outcome_signature() == signature, (
                    f"{num_shards}-shard replay diverged from the "
                    f"1-shard reference (seed {shard_seed}, "
                    f"adaptive={adaptive})")

    def test_adaptive_epochs_reduce_epoch_count(self):
        """On a sparse tail the adaptive grid must coarsen: fewer epoch
        boundaries than the fixed grid, same outcomes as its own
        lock-step twin (checked above), same request terminal set."""
        scenario = random_scenario(3)
        fixed = run_modes(scenario, 2, adaptive_epochs=False)
        adaptive = run_modes(scenario, 2, adaptive_epochs=True)
        assert adaptive.epochs < fixed.epochs
        assert (sorted(s[0] for s in adaptive.outcome_signature())
                == sorted(s[0] for s in fixed.outcome_signature()))


def open_fds() -> int:
    gc.collect()
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs /proc to count descriptors")
class TestProcessBackendHygiene:
    def test_back_to_back_replays_leak_no_fds(self):
        """Regression: ``Process.join`` keeps the sentinel fd until
        ``Process.close``; before the fix every process-backend replay
        leaked one fd and one half-closed pipe per shard."""
        scenario = random_scenario(3)
        run_modes(scenario, 2, backend="process")  # warm spawn machinery
        before = open_fds()
        for _ in range(3):
            run_modes(scenario, 2, backend="process")
        after = open_fds()
        # Slack of 2 tolerates interpreter-internal descriptors
        # (e.g. lazily opened /dev/urandom), not per-run growth: three
        # runs x two shards would leak >= 6 descriptors unfixed.
        assert after - before <= 2, (
            f"process backend leaked {after - before} fds over three "
            f"back-to-back replays")
