"""Unit tests for execution plans and their invariants."""

import pytest

from repro.core.plan import ExecMethod, ExecutionPlan, Partition
from repro.errors import PlanError
from repro.models import build_model


@pytest.fixture(scope="module")
def model():
    return build_model("bert-base")


def make_plan(model, decisions=None, partitions=None, strategy="pipeswitch"):
    n = len(model.layers)
    if decisions is None:
        decisions = tuple(
            ExecMethod.LOAD if layer.loadable else ExecMethod.DHA
            for layer in model.layers)
    if partitions is None:
        partitions = (Partition(index=0, start=0, stop=n),)
    return ExecutionPlan(model=model, batch_size=1, decisions=tuple(decisions),
                         partitions=tuple(partitions), strategy=strategy,
                         machine_name="p3.8xlarge")


class TestValidation:
    def test_valid_plan_constructs(self, model):
        plan = make_plan(model)
        assert plan.num_partitions == 1
        assert not plan.uses_parallel_transmission

    def test_wrong_decision_count_rejected(self, model):
        with pytest.raises(PlanError, match="decisions"):
            make_plan(model, decisions=[ExecMethod.LOAD])

    def test_parameter_free_layer_must_be_dha(self, model):
        decisions = [ExecMethod.LOAD] * len(model.layers)
        with pytest.raises(PlanError, match="no parameters"):
            make_plan(model, decisions=decisions)

    def test_dha_outside_first_partition_rejected(self, model):
        n = len(model.layers)
        decisions = [ExecMethod.LOAD if layer.loadable else ExecMethod.DHA
                     for layer in model.layers]
        # Force a loadable layer in partition 1 to DHA.
        last_loadable = model.loadable_indices()[-1]
        decisions[last_loadable] = ExecMethod.DHA
        partitions = (Partition(0, 0, n // 2), Partition(1, n // 2, n))
        with pytest.raises(PlanError, match="first partition"):
            make_plan(model, decisions=decisions, partitions=partitions)

    def test_non_contiguous_partitions_rejected(self, model):
        n = len(model.layers)
        partitions = (Partition(0, 0, 10), Partition(1, 12, n))
        with pytest.raises(PlanError, match="contiguous"):
            make_plan(model, partitions=partitions)

    def test_partitions_must_cover_model(self, model):
        partitions = (Partition(0, 0, 10),)
        with pytest.raises(PlanError, match="cover"):
            make_plan(model, partitions=partitions)

    def test_empty_partition_rejected(self, model):
        n = len(model.layers)
        partitions = (Partition(0, 0, n), Partition(1, n, n))
        with pytest.raises(PlanError):
            make_plan(model, partitions=partitions)


class TestAccounting:
    def test_all_loaded_plan_is_fully_gpu_resident(self, model):
        plan = make_plan(model)
        assert plan.gpu_resident_bytes == model.param_bytes
        assert plan.host_resident_bytes == 0

    def test_dha_moves_bytes_host_side(self, model):
        decisions = [ExecMethod.LOAD if layer.loadable else ExecMethod.DHA
                     for layer in model.layers]
        word = model.layer_index("embeddings.word")
        decisions[word] = ExecMethod.DHA
        plan = make_plan(model, decisions=decisions)
        word_bytes = model.layers[word].param_bytes
        assert plan.host_resident_bytes == word_bytes
        assert plan.gpu_resident_bytes == model.param_bytes - word_bytes

    def test_partition_load_bytes_sum_to_total(self, model):
        n = len(model.layers)
        partitions = (Partition(0, 0, n // 2), Partition(1, n // 2, n))
        plan = make_plan(model, partitions=partitions, strategy="pt")
        total = sum(plan.partition_load_bytes(p) for p in range(2))
        assert total == plan.gpu_resident_bytes

    def test_partition_of(self, model):
        n = len(model.layers)
        partitions = (Partition(0, 0, n // 2), Partition(1, n // 2, n))
        plan = make_plan(model, partitions=partitions, strategy="pt")
        assert plan.partition_of(0) == 0
        assert plan.partition_of(n - 1) == 1


class TestReporting:
    def test_table3_row_renders_O_and_X(self, model):
        decisions = [ExecMethod.LOAD if layer.loadable else ExecMethod.DHA
                     for layer in model.layers]
        decisions[model.layer_index("embeddings.word")] = ExecMethod.DHA
        plan = make_plan(model, decisions=decisions)
        indices = [model.layer_index("embeddings.word"),
                   model.layer_index("encoder.0.attn.q")]
        assert plan.table3_row(indices) == "X O"

    def test_summary_contains_strategy_and_counts(self, model):
        text = make_plan(model).summary()
        assert "pipeswitch" in text
        assert "loaded layers" in text
