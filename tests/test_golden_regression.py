"""Golden regression tests for the paper's headline figures.

Recompute the Figure 11 / Figure 6 speedup ratios and compare against
the committed goldens in ``tests/golden/paper_figures.json``.  Two
layers of assertion:

* **direction** — every committed speedup claim still holds (ratio > 1
  where the paper reports a gain), independent of the golden values;
* **stability** — each ratio is within ±10% of the committed value, so
  an accidental cost-model or simulator change that shifts the paper's
  numbers fails loudly.

Deliberate recalibrations regenerate the goldens with ``make regolden``
and commit the reviewed diff.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from make_golden import (  # noqa: E402
    GOLDEN_PATH,
    compute_fig06_ratios,
    compute_fig11_ratios,
)

TOLERANCE = 0.10


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), \
        "tests/golden/paper_figures.json missing — run `make regolden`"
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def fig11():
    return compute_fig11_ratios()


@pytest.fixture(scope="module")
def fig06():
    return compute_fig06_ratios()


class TestFig11Golden:
    def test_speedup_directions_hold(self, fig11):
        for name, ratios in fig11.items():
            # DHA beats PipeSwitch, PT+DHA beats both and Baseline.
            assert ratios["pipeswitch_over_dha"] > 1.0, name
            assert ratios["pipeswitch_over_pt_dha"] >= \
                ratios["pipeswitch_over_dha"] - 1e-9, name
            assert ratios["baseline_over_pt_dha"] > 1.0, name

    def test_headline_bert_speedup_band(self, fig11):
        # The paper's headline claim: ~1.94x for BERT-Base (PT+DHA over
        # PipeSwitch).  Keep a generous band; the ±10% golden check
        # below pins the exact value.
        assert 1.7 < fig11["bert-base"]["pipeswitch_over_pt_dha"] < 2.2

    def test_ratios_match_golden(self, golden, fig11):
        committed = golden["fig11_speedup_ratios"]
        assert set(fig11) == set(committed)
        for name, ratios in fig11.items():
            for key, value in ratios.items():
                assert value == pytest.approx(
                    committed[name][key], rel=TOLERANCE), (name, key)


class TestFig06Golden:
    def test_speedup_directions_hold(self, fig06):
        for name, ratios in fig06.items():
            assert ratios["serial_over_parallel2"] > 1.0, name
            # Pipelined forwarding never loses to plain parallel.
            assert ratios["serial_over_parallel_pipeline2"] >= \
                ratios["serial_over_parallel2"] - 1e-9, name

    def test_parallel_cut_is_in_paper_band(self, fig06):
        # Figure 6: parallel(2) cuts load time 30-45%, i.e. the serial /
        # parallel ratio lands in [1/0.70, 1/0.55].
        for name, ratios in fig06.items():
            cut = 1.0 - 1.0 / ratios["serial_over_parallel2"]
            assert 0.25 < cut < 0.50, name

    def test_ratios_match_golden(self, golden, fig06):
        committed = golden["fig06_transmission_ratios"]
        assert set(fig06) == set(committed)
        for name, ratios in fig06.items():
            for key, value in ratios.items():
                assert value == pytest.approx(
                    committed[name][key], rel=TOLERANCE), (name, key)
