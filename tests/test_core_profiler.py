"""Unit tests for the layer profiler."""

import pytest

from repro.core.profiler import LayerProfiler
from repro.hw.specs import p3_8xlarge
from repro.models import CostModel, build_model


@pytest.fixture(scope="module")
def cm():
    return CostModel(p3_8xlarge())


class TestProfiling:
    def test_profile_covers_every_layer(self, cm):
        model = build_model("resnet50")
        report = LayerProfiler(cm).profile(model)
        assert len(report) == len(model.layers)
        assert [c.name for c in report] == [l.name for l in model.layers]

    def test_noiseless_profile_matches_cost_model(self, cm):
        model = build_model("bert-base")
        report = LayerProfiler(cm, noise=0.0).profile(model)
        for layer, measured in zip(model.layers, report):
            assert measured.load_time == cm.load_time(layer)
            assert measured.exec_inmem == cm.exec_inmem(layer, 1)
            assert measured.exec_dha == cm.exec_dha(layer, 1, during_load=True)

    def test_noise_is_small_and_seeded(self, cm):
        model = build_model("resnet50")
        a = LayerProfiler(cm, noise=0.02, seed=7).profile(model)
        b = LayerProfiler(cm, noise=0.02, seed=7).profile(model)
        c = LayerProfiler(cm, noise=0.02, seed=8).profile(model)
        assert [x.load_time for x in a] == [x.load_time for x in b]
        assert [x.load_time for x in a] != [x.load_time for x in c]
        for truth, measured in zip(model.layers, a):
            if truth.loadable:
                assert measured.load_time == pytest.approx(
                    cm.load_time(truth), rel=0.05)

    def test_more_iterations_cost_more_time(self, cm):
        model = build_model("resnet50")
        short = LayerProfiler(cm, iterations=5).profile(model)
        long = LayerProfiler(cm, iterations=10).profile(model)
        assert long.total_time > short.total_time
        assert long.iterations == 10

    def test_profiling_cost_breakdown_sums(self, cm):
        report = LayerProfiler(cm).profile(build_model("resnet50"))
        assert report.total_time == pytest.approx(
            report.time_dha + report.time_inmem + report.time_load)

    def test_profiling_cost_scales_with_model(self, cm):
        """Table 5: larger/slower models take longer to profile."""
        small = LayerProfiler(cm, noise=0.0).profile(build_model("resnet50"))
        large = LayerProfiler(cm, noise=0.0).profile(
            build_model("roberta-large"))
        assert large.total_time > 2 * small.total_time

    def test_dha_prerun_dominates(self, cm):
        """DHA execution is the slowest pre-run (as in paper Table 5)."""
        report = LayerProfiler(cm, noise=0.0).profile(build_model("bert-base"))
        assert report.time_dha > report.time_inmem
        assert report.time_dha > report.time_load


class TestValidation:
    def test_bad_iterations_rejected(self, cm):
        with pytest.raises(ValueError):
            LayerProfiler(cm, iterations=0)

    def test_negative_noise_rejected(self, cm):
        with pytest.raises(ValueError):
            LayerProfiler(cm, noise=-0.1)
