"""Unit tests for the HDR-style latency histogram."""

import numpy
import pytest

from repro.serving.histogram import LatencyHistogram, merge_histograms
from repro.units import MS


def seeded_samples(seed=0, count=5000):
    rng = numpy.random.default_rng(seed)
    # Lognormal latencies: a realistic heavy-ish serving tail, ~10 ms
    # median with outliers past 100 ms.
    return rng.lognormal(mean=numpy.log(0.010), sigma=0.8, size=count)


class TestBuckets:
    def test_value_falls_within_its_bucket(self):
        hist = LatencyHistogram()
        for value in (1e-6, 1e-3, 0.05, 1.0, 37.5):
            index = hist._index(value)
            low, high = hist.bucket_edges(index)
            assert low < value <= high or (index == 0 and value <= high)

    def test_bucket_zero_absorbs_tiny_values(self):
        hist = LatencyHistogram()
        hist.add(0.0)
        hist.add(hist.min_latency / 2)
        assert hist.counts.get(0) == 2

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().add(-1.0)

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(resolution=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=0.0)

    def test_relative_width_bounded_by_resolution(self):
        hist = LatencyHistogram(resolution=0.01)
        for value in (0.001, 0.05, 2.0):
            low, high = hist.bucket_edges(hist._index(value))
            assert (high - low) / low <= 0.01 + 1e-12


class TestPercentiles:
    def test_matches_exact_rank_within_resolution(self):
        samples = seeded_samples()
        hist = LatencyHistogram(resolution=0.01)
        for value in samples:
            hist.add(float(value))
        for q in (50.0, 90.0, 99.0, 99.9):
            exact = float(numpy.percentile(samples, q, method="higher"))
            approx = hist.percentile(q)
            assert approx == pytest.approx(exact, rel=0.011), q

    def test_extremes_clamp_to_observed_range(self):
        hist = LatencyHistogram()
        for value in (3 * MS, 7 * MS, 90 * MS):
            hist.add(value)
        assert hist.percentile(0) >= hist.min
        assert hist.percentile(100) == hist.max

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(99)

    def test_out_of_range_quantile_rejected(self):
        hist = LatencyHistogram()
        hist.add(1 * MS)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)


class TestMerge:
    def test_merge_is_associative_and_order_independent(self):
        parts = []
        for seed in range(3):
            hist = LatencyHistogram()
            for value in seeded_samples(seed=seed, count=500):
                hist.add(float(value))
            parts.append(hist)
        a, b, c = parts
        left = merge_histograms([merge_histograms([a, b]), c])
        right = merge_histograms([a, merge_histograms([b, c])])
        shuffled = merge_histograms([c, a, b])
        for other in (right, shuffled):
            assert left.counts == other.counts
            assert left.total == other.total
            assert left.min == other.min
            assert left.max == other.max
            # sum is a float accumulator; merge order only shifts ulps.
            assert left.sum == pytest.approx(other.sum)
        assert left.total == sum(p.total for p in parts)

    def test_merged_percentiles_match_pooled_samples(self):
        pools = [seeded_samples(seed=s, count=1000) for s in (1, 2)]
        parts = []
        for pool in pools:
            hist = LatencyHistogram()
            for value in pool:
                hist.add(float(value))
            parts.append(hist)
        merged = merge_histograms(parts)
        pooled = numpy.concatenate(pools)
        exact = float(numpy.percentile(pooled, 99, method="higher"))
        assert merged.percentile(99) == pytest.approx(exact, rel=0.011)

    def test_incompatible_layouts_rejected(self):
        a = LatencyHistogram(resolution=0.01)
        b = LatencyHistogram(resolution=0.05)
        a.add(1 * MS)
        b.add(1 * MS)
        with pytest.raises(ValueError):
            merge_histograms([a, b])

    def test_update_accumulates_stats(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.add(10 * MS)
        b.add(30 * MS)
        a.update(b)
        assert a.total == 2
        assert a.min == pytest.approx(10 * MS)
        assert a.max == pytest.approx(30 * MS)


class TestMergeProperties:
    """Seeded algebraic properties of merge — the sharded-replay transport.

    Sharded replay reassembles one global latency distribution from
    per-shard histograms, so merge must behave like a commutative
    monoid on the count state: any grouping of shards, merged in any
    order, has to tell the same story as recording every sample into a
    single histogram.
    """

    @staticmethod
    def _partition(seed):
        rng = numpy.random.default_rng(seed)
        samples = rng.lognormal(mean=numpy.log(0.010), sigma=0.8,
                                size=int(rng.integers(50, 400)))
        cuts = sorted(rng.integers(0, len(samples),
                                   size=int(rng.integers(1, 5))))
        parts = numpy.split(samples, cuts)
        hists = []
        for part in parts:
            hist = LatencyHistogram()
            for value in part:
                hist.add(float(value))
            hists.append(hist)
        return samples, hists

    def test_commutative_exactly(self, property_seed):
        _, hists = self._partition(property_seed)
        a = hists[0]
        b = hists[-1]
        ab = merge_histograms([a, b])
        ba = merge_histograms([b, a])
        assert ab.counts == ba.counts
        assert ab.total == ba.total
        assert ab.min == ba.min
        assert ab.max == ba.max
        # Two-operand float addition commutes exactly, so even the sum
        # accumulator must match to the last bit.
        assert ab.sum == ba.sum

    def test_associative_on_counts(self, property_seed):
        _, hists = self._partition(property_seed)
        if len(hists) < 3:
            hists = hists * 3
        a, b, c = hists[0], hists[1], hists[2]
        left = merge_histograms([merge_histograms([a, b]), c])
        right = merge_histograms([a, merge_histograms([b, c])])
        assert left.counts == right.counts
        assert left.total == right.total
        assert left.min == right.min
        assert left.max == right.max
        # Association changes float-addition order: counts are exact,
        # the sum may differ in its last ulps only.
        assert left.sum == pytest.approx(right.sum, rel=1e-12)

    def test_merge_matches_single_histogram_recording(self, property_seed):
        samples, hists = self._partition(property_seed)
        single = LatencyHistogram()
        for value in samples:
            single.add(float(value))
        rng = numpy.random.default_rng(property_seed + 1)
        order = list(rng.permutation(len(hists)))
        merged = merge_histograms([hists[i] for i in order])
        assert merged.counts == single.counts
        assert merged.total == single.total
        assert merged.min == single.min
        assert merged.max == single.max
        assert merged.sum == pytest.approx(single.sum, rel=1e-12)
        if single.total:
            assert merged.percentile(99) == single.percentile(99)

    def test_merged_round_trips_through_serialization(self, property_seed):
        _, hists = self._partition(property_seed)
        merged = merge_histograms(hists)
        clone = LatencyHistogram.from_dict(merged.to_dict())
        assert clone == merged
        restored = merge_histograms(
            [LatencyHistogram.from_dict(h.to_dict()) for h in hists])
        assert restored.counts == merged.counts
        assert restored.total == merged.total
        assert restored.sum == merged.sum


class TestSerialization:
    def test_round_trip(self):
        hist = LatencyHistogram()
        for value in seeded_samples(count=200):
            hist.add(float(value))
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone == hist
        assert clone.percentile(99) == hist.percentile(99)

    def test_copy_is_independent(self):
        hist = LatencyHistogram()
        hist.add(5 * MS)
        clone = hist.copy()
        clone.add(50 * MS)
        assert hist.total == 1
        assert clone.total == 2
