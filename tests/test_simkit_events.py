"""Unit tests for the event primitives."""

import pytest

from repro.simkit import Event, Simulator, all_of, any_of


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.ok

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_records_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert event.failed
        assert event.value is error

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_value_before_trigger_rejected(self, sim):
        with pytest.raises(RuntimeError):
            sim.event().value

    def test_callback_runs_at_trigger_time(self, sim):
        seen = []
        event = sim.timeout(3.0, "late")
        event.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(3.0, "late")]

    def test_callback_added_after_trigger_still_runs(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        event = sim.timeout(1.5)
        sim.run()
        assert sim.now == 1.5
        assert event.ok

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)

    def test_zero_timeout_fires_without_advancing(self, sim):
        event = sim.timeout(0.0, "now")
        sim.run()
        assert sim.now == 0.0
        assert event.value == "now"

    def test_timeouts_fire_in_order(self, sim):
        order = []
        for delay in (2.0, 1.0, 3.0):
            sim.timeout(delay, delay).add_callback(
                lambda e: order.append(e.value))
        sim.run()
        assert order == [1.0, 2.0, 3.0]


class TestCombinators:
    def test_all_of_collects_values_in_order(self, sim):
        events = [sim.timeout(2.0, "b"), sim.timeout(1.0, "a")]
        combined = all_of(sim, events)
        sim.run()
        assert combined.value == ["b", "a"]
        assert sim.now == 2.0

    def test_all_of_empty_succeeds_immediately(self, sim):
        assert all_of(sim, []).ok

    def test_all_of_fails_on_first_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = all_of(sim, [good, bad])
        bad.fail(ValueError("nope"))
        sim.run()
        assert combined.failed
        assert isinstance(combined.value, ValueError)

    def test_any_of_takes_first_value(self, sim):
        combined = any_of(sim, [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        sim.run()
        assert combined.value == "fast"

    def test_any_of_requires_events(self, sim):
        with pytest.raises(ValueError):
            any_of(sim, [])
