"""Tests for the transmission-only experiments (Figure 6 / Table 2)."""

import pytest

from repro.engine import transmit_model
from repro.engine.transmission import spread_gpus
from repro.errors import TopologyError
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.models import build_model
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


def fresh_machine():
    return Machine(Simulator(), p3_8xlarge())


def transmit(model, mode, num_gpus=1):
    machine = fresh_machine()
    process = transmit_model(machine, model, target=0, mode=mode,
                             num_gpus=num_gpus)
    return machine.sim.run(process.done)


class TestSpreadGpus:
    def test_prefers_other_switch_first(self):
        machine = fresh_machine()
        assert spread_gpus(machine, 0, 2) == [0, 2]
        assert spread_gpus(machine, 0, 3) == [0, 2, 1]
        assert spread_gpus(machine, 0, 4) == [0, 2, 1, 3]

    def test_bad_count_rejected(self):
        machine = fresh_machine()
        with pytest.raises(TopologyError):
            spread_gpus(machine, 0, 5)


class TestModes:
    def test_serial_matches_cost_model(self, bert):
        from repro.models import CostModel
        result = transmit(bert, "serial")
        expected = CostModel(p3_8xlarge()).model_load_time(bert)
        assert result.load_time == pytest.approx(expected, rel=1e-6)

    def test_parallel_two_gpus_reduces_time(self, bert):
        """Paper: parallel cuts load time by 30-45% vs serial."""
        serial = transmit(bert, "serial").load_time
        parallel = transmit(bert, "parallel", num_gpus=2).load_time
        reduction = 1 - parallel / serial
        assert 0.25 < reduction < 0.50

    def test_parallel_pipeline_roughly_halves_transformer_load(self, bert):
        """Paper: parallel-pipeline nearly halves BERT's load time."""
        serial = transmit(bert, "serial").load_time
        pipelined = transmit(bert, "parallel-pipeline", num_gpus=2).load_time
        assert pipelined < 0.60 * serial

    def test_pipeline_beats_bulk_forward(self, bert):
        bulk = transmit(bert, "parallel", num_gpus=2).load_time
        pipelined = transmit(bert, "parallel-pipeline", num_gpus=2).load_time
        assert pipelined < bulk

    def test_four_gpus_hit_switch_contention(self, bert):
        """Paper Table 2: with four GPUs the per-lane bandwidth halves,
        erasing most of the parallel gain."""
        two = transmit(bert, "parallel-pipeline", num_gpus=2)
        four = transmit(bert, "parallel-pipeline", num_gpus=4)
        assert four.average_pcie_bandwidth < 0.65 * two.average_pcie_bandwidth
        assert four.load_time > 0.8 * two.load_time

    def test_table2_bandwidths(self, bert):
        """Serial ~10.9 GB/s; pp(2) similar; pp(4) ~6 GB/s (Table 2)."""
        serial = transmit(bert, "serial").average_pcie_bandwidth
        pp2 = transmit(bert, "parallel-pipeline", 2).average_pcie_bandwidth
        pp4 = transmit(bert, "parallel-pipeline", 4).average_pcie_bandwidth
        assert serial / 1e9 == pytest.approx(10.87, rel=0.12)
        assert pp2 / 1e9 == pytest.approx(10.67, rel=0.12)
        assert pp4 / 1e9 == pytest.approx(5.89, rel=0.15)

    def test_unknown_mode_rejected(self, bert):
        machine = fresh_machine()
        with pytest.raises(ValueError):
            transmit_model(machine, bert, mode="warp")

    def test_resnet_gains_less_from_pipelining(self, bert):
        """Many small layers keep PCIe underutilized for ResNet (paper:
        ~40% reduction vs ~50% for transformers)."""
        resnet = build_model("resnet50")
        serial_r = transmit(resnet, "serial").load_time
        pp_r = transmit(resnet, "parallel-pipeline", 2).load_time
        serial_b = transmit(bert, "serial").load_time
        pp_b = transmit(bert, "parallel-pipeline", 2).load_time
        assert (1 - pp_r / serial_r) < (1 - pp_b / serial_b)
