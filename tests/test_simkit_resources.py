"""Unit tests for Resource and Store."""

import pytest

from repro.simkit import Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_under_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        first = resource.request()
        second = resource.request()
        assert first.triggered and second.triggered
        assert resource.in_use == 2

    def test_queueing_over_capacity(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        waiting = resource.request()
        assert held.triggered
        assert not waiting.triggered
        assert resource.queue_length == 1
        resource.release(held)
        assert waiting.triggered
        assert resource.in_use == 1

    def test_fifo_grant_order(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            grant = resource.request()
            yield grant
            order.append((name, sim.now))
            yield sim.timeout(hold)
            resource.release(grant)

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 2.0))
        sim.process(worker("c", 2.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 4.0)]

    def test_release_unheld_grant_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release(sim.event())

    def test_cancel_queued_request(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        queued = resource.request()
        resource.cancel(queued)
        resource.release(held)
        assert not queued.triggered
        assert resource.in_use == 0

    def test_cancel_non_queued_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        granted = resource.request()
        with pytest.raises(RuntimeError):
            resource.cancel(granted)

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        event = store.get()
        assert event.triggered
        assert event.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        event = store.get()
        assert not event.triggered
        store.put(7)
        assert event.value == 7

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        first = store.get()
        second = store.get()
        store.put("x")
        store.put("y")
        assert first.value == "x"
        assert second.value == "y"

    def test_len_and_peek(self, sim):
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.peek_all() == ("a", "b")
        store.get()
        assert len(store) == 1
