"""Tests for unit helpers (tiny, but they anchor every other number)."""

from repro.units import GB, GBPS, KB, MB, MS, SECONDS, US, to_ms, to_us


def test_binary_sizes():
    assert KB == 1024
    assert MB == 1024 ** 2
    assert GB == 1024 ** 3


def test_time_constants():
    assert US == 1e-6
    assert MS == 1e-3
    assert SECONDS == 1.0


def test_bandwidth_is_decimal():
    # Link specs quote decimal GB/s (12 GB/s = 12e9 bytes/s).
    assert GBPS == 1e9


def test_conversions():
    assert to_ms(0.5) == 500.0
    assert to_us(0.001) == 1000.0
