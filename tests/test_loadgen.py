"""Tests for the open-loop traffic frontend (:mod:`repro.loadgen`).

Covers the three layers: rate-function algebra, deterministic arrival
generation, and the open/closed-loop driver — including the two
properties the subsystem exists for: (1) fault-free runs through the
generator are bit-identical to the plain trace-replay path, and (2)
under an induced stall the closed loop under-reports the tail (the
coordinated-omission gap) while the open loop does not.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DeepPlan
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.hw.specs import p3_8xlarge
from repro.loadgen import (
    Arrival,
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    LoadGen,
    LoadGenConfig,
    MergedTraffic,
    SyntheticTraffic,
    TraceRate,
    TraceTraffic,
    TrafficClass,
)
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    MAFTraceConfig,
    PoissonWorkload,
    ServerConfig,
    synthesize_maf_trace,
)
from repro.simkit import Simulator
from repro.units import MS


@pytest.fixture(scope="module")
def planner():
    return DeepPlan(p3_8xlarge(), noise=0.0)


def make_server(planner, instances=16, **config_kwargs):
    machine = Machine(Simulator(), p3_8xlarge())
    server = InferenceServer(machine, planner,
                             ServerConfig(**config_kwargs))
    server.deploy([(build_model("bert-base"), instances)])
    return server


def record_tuples(metrics):
    return [(r.request_id, r.submitted_at, r.started_at, r.finished_at,
             r.cold_start)
            for r in sorted(metrics.records, key=lambda r: r.request_id)]


class TestRateFunctions:
    def test_constant(self):
        rate = ConstantRate(5.0)
        assert rate.rate(0.0) == 5.0
        assert rate.peak(0.0, 100.0) == 5.0

    def test_diurnal_stays_within_envelope(self):
        rate = DiurnalRate(base=10.0, amplitude=0.5, period=100.0)
        values = [rate.rate(t) for t in range(0, 100, 5)]
        assert min(values) >= 10.0 * 0.5 - 1e-9
        assert max(values) <= rate.peak(0.0, 100.0) + 1e-9
        assert rate.peak(0.0, 100.0) == pytest.approx(15.0)

    def test_flash_crowd_window(self):
        crowd = FlashCrowd(start=10.0, duration=5.0, magnitude=100.0)
        assert crowd.rate(9.9) == 0.0
        assert crowd.rate(12.0) == 100.0
        assert crowd.rate(15.0) == 0.0
        assert crowd.peak(0.0, 9.0) == 0.0
        assert crowd.peak(14.0, 20.0) == 100.0

    def test_composition_algebra(self):
        combined = ConstantRate(3.0) + 2.0 * ConstantRate(4.0)
        assert combined.rate(1.0) == pytest.approx(11.0)
        assert combined.peak(0.0, 1.0) == pytest.approx(11.0)

    def test_trace_rate_replays_buckets(self):
        rate = TraceRate(10.0, [1.0, 5.0, 2.0])
        assert rate.rate(0.0) == 1.0
        assert rate.rate(15.0) == 5.0
        assert rate.rate(31.0) == 0.0  # past the trace
        assert rate.peak(5.0, 25.0) == 5.0
        assert rate.duration == 30.0

    def test_trace_rate_from_maf_trace(self):
        trace = synthesize_maf_trace(
            ["i0", "i1"], MAFTraceConfig(duration=60.0, target_rps=10.0))
        rate = TraceRate.from_trace(trace)
        assert rate.rate(0.0) == pytest.approx(float(trace.offered_load[0]))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ConstantRate(-1.0)
        with pytest.raises(WorkloadError):
            DiurnalRate(base=1.0, amplitude=1.5)
        with pytest.raises(WorkloadError):
            FlashCrowd(start=0.0, duration=0.0, magnitude=1.0)
        with pytest.raises(WorkloadError):
            TraceRate(10.0, [])


class TestSyntheticTraffic:
    def test_deterministic_per_seed(self):
        def build():
            return SyntheticTraffic(
                [TrafficClass("a", ConstantRate(20.0), ["i0", "i1"]),
                 TrafficClass("b", DiurnalRate(10.0, period=30.0), ["i2"])],
                seed=42)
        first = list(build().arrivals(30.0))
        second = list(build().arrivals(30.0))
        assert first == second
        assert list(build().arrivals(30.0)) != \
            list(SyntheticTraffic(
                [TrafficClass("a", ConstantRate(20.0), ["i0", "i1"]),
                 TrafficClass("b", DiurnalRate(10.0, period=30.0), ["i2"])],
                seed=43).arrivals(30.0))

    def test_class_streams_are_independent(self):
        """Removing one class never perturbs another's arrivals."""
        a = TrafficClass("a", ConstantRate(20.0), ["i0"])
        b = TrafficClass("b", ConstantRate(30.0), ["i1"])
        both = list(SyntheticTraffic([a, b], seed=7).arrivals(20.0))
        alone = list(SyntheticTraffic([a], seed=7).arrivals(20.0))
        assert [x for x in both if x.instance == "i0"] == alone

    def test_arrival_count_tracks_rate(self):
        """Statistical sanity: observed count within 5 sigma of lambda*T."""
        traffic = SyntheticTraffic(
            [TrafficClass("x", ConstantRate(50.0), ["i0"])], seed=1)
        count = sum(1 for _ in traffic.arrivals(100.0))
        expected = 50.0 * 100.0
        assert abs(count - expected) < 5 * expected ** 0.5

    def test_arrivals_ordered_and_stamped(self):
        traffic = SyntheticTraffic(
            [TrafficClass("gold", ConstantRate(30.0), ["i0"], qos="gold"),
             TrafficClass("std", ConstantRate(30.0), ["i1"])],
            seed=5)
        arrivals = list(traffic.arrivals(10.0))
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert {a.qos for a in arrivals} == {"gold", "standard"}

    def test_weights_bias_instance_choice(self):
        traffic = SyntheticTraffic(
            [TrafficClass("x", ConstantRate(100.0), ["hot", "cold"],
                          weights=[9.0, 1.0])], seed=3)
        arrivals = list(traffic.arrivals(30.0))
        hot = sum(1 for a in arrivals if a.instance == "hot")
        assert hot / len(arrivals) > 0.8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticTraffic([], seed=0)
        with pytest.raises(WorkloadError):
            TrafficClass("x", ConstantRate(1.0), [])
        with pytest.raises(WorkloadError):
            TrafficClass("x", ConstantRate(1.0), ["i0"], weights=[1.0, 2.0])
        cls = TrafficClass("x", ConstantRate(1.0), ["i0"])
        with pytest.raises(WorkloadError):
            SyntheticTraffic([cls, cls], seed=0)

    def test_merged_traffic_interleaves(self):
        first = TraceTraffic([Arrival(1.0, "i0"), Arrival(3.0, "i0")])
        second = TraceTraffic([Arrival(2.0, "i1")])
        merged = list(MergedTraffic([first, second]).arrivals(10.0))
        assert [a.time for a in merged] == [1.0, 2.0, 3.0]


class TestOpenLoopDriver:
    def test_open_loop_is_bit_identical_to_trace_replay(self, planner):
        workload = PoissonWorkload(
            list(make_server(planner).instances), rate=40.0,
            num_requests=120, seed=9)
        reference = make_server(planner)
        ref_report = reference.run(workload.generate())
        target = make_server(planner)
        trace = TraceTraffic([(r.arrival_time, r.instance_name)
                              for r in workload.generate()])
        report = LoadGen(target, trace, LoadGenConfig(
            duration=trace.duration + 1.0)).run()
        assert record_tuples(report.metrics) \
            == record_tuples(ref_report.metrics)

    def test_closed_loop_with_ample_clients_is_bit_identical(self, planner):
        """An unconstrained pool never delays a send, so the closed loop
        degenerates to exact trace replay."""
        workload = PoissonWorkload(
            list(make_server(planner).instances), rate=40.0,
            num_requests=120, seed=9)
        reference = make_server(planner)
        ref_report = reference.run(workload.generate())
        target = make_server(planner)
        trace = TraceTraffic([(r.arrival_time, r.instance_name)
                              for r in workload.generate()])
        report = LoadGen(target, trace, LoadGenConfig(
            duration=trace.duration + 1.0, mode="closed",
            clients=10 ** 6)).run()
        assert record_tuples(report.metrics) \
            == record_tuples(ref_report.metrics)

    def test_open_loop_conserves_requests(self, planner):
        server = make_server(planner)
        traffic = SyntheticTraffic(
            [TrafficClass("x", ConstantRate(40.0),
                          list(server.instances))], seed=2)
        report = LoadGen(server, traffic,
                         LoadGenConfig(duration=5.0)).run()
        assert report.offered > 0
        assert report.completed + report.shed + report.dropped \
            == report.offered == report.submitted
        assert report.metrics.histogram.total == report.completed

    def test_max_requests_caps_offered_load(self, planner):
        server = make_server(planner)
        traffic = SyntheticTraffic(
            [TrafficClass("x", ConstantRate(50.0),
                          list(server.instances))], seed=2)
        report = LoadGen(server, traffic, LoadGenConfig(
            duration=10.0, max_requests=25)).run()
        assert report.offered == 25

    def test_qos_breakdown_reported(self, planner):
        server = make_server(planner)
        names = list(server.instances)
        traffic = SyntheticTraffic(
            [TrafficClass("gold", ConstantRate(20.0), names, qos="gold"),
             TrafficClass("std", ConstantRate(20.0), names)], seed=4)
        report = LoadGen(server, traffic,
                         LoadGenConfig(duration=5.0)).run()
        assert set(report.by_qos) == {"gold", "standard"}
        assert sum(h.total for h in report.by_qos.values()) \
            == report.completed

    def test_unknown_instance_fails_loudly(self, planner):
        server = make_server(planner)
        traffic = TraceTraffic([(0.5, "no-such-instance")])
        with pytest.raises(WorkloadError, match="unknown instance"):
            LoadGen(server, traffic, LoadGenConfig(duration=2.0)).run()

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            LoadGenConfig(duration=0.0)
        with pytest.raises(WorkloadError):
            LoadGenConfig(duration=1.0, mode="half-open")
        with pytest.raises(WorkloadError):
            LoadGenConfig(duration=1.0, clients=0)
        with pytest.raises(WorkloadError):
            LoadGenConfig(duration=1.0, max_requests=0)


class TestCoordinatedOmission:
    def test_closed_loop_under_reports_the_tail(self, planner):
        """A flash crowd saturates the server; the open loop measures the
        stall it causes, the closed loop's arrivals evaporate with it."""
        def measure(mode):
            server = make_server(planner, instances=16)
            rate = ConstantRate(30.0) + FlashCrowd(
                start=2.0, duration=3.0, magnitude=1500.0)
            traffic = SyntheticTraffic(
                [TrafficClass("mix", rate, list(server.instances))],
                seed=11)
            report = LoadGen(server, traffic, LoadGenConfig(
                duration=8.0, mode=mode, clients=4)).run()
            return report
        open_report = measure("open")
        closed_report = measure("closed")
        # Same intended arrivals either way.
        assert open_report.offered == closed_report.offered
        # The open loop's p99 includes the overload queueing; the closed
        # loop self-throttled and never sampled it.
        assert open_report.metrics.p99_latency \
            > 2 * closed_report.metrics.p99_latency
        # The gap is the whole point: closed-loop goodput looks healthy
        # under an overload the open loop correctly reports as an SLO
        # disaster.
        assert open_report.metrics.goodput < closed_report.metrics.goodput


class TestClusterTarget:
    def test_cluster_run_with_audit_quiesces_clean(self, planner):
        bert = build_model("bert-base")
        cluster = Cluster(p3_8xlarge(), ClusterConfig(
            num_machines=2, replication=2, audit=True))
        cluster.deploy([(bert, 8)])
        traffic = SyntheticTraffic(
            [TrafficClass("x", ConstantRate(50.0),
                          list(cluster.instance_names))], seed=6)
        report = LoadGen(cluster, traffic,
                         LoadGenConfig(duration=5.0)).run()
        assert report.completed + report.shed + report.dropped \
            == report.offered
        assert cluster.auditor is not None
        assert cluster.auditor.check_quiesce() == []

    def test_cluster_shed_counts_against_goodput(self, planner):
        """The deadline guardrail's sheds land in the loadgen collector
        and deflate goodput (the denominator fix)."""
        bert = build_model("bert-base")
        cluster = Cluster(p3_8xlarge(), ClusterConfig(
            num_machines=2, replication=2, audit=True,
            deadline=20 * MS))
        cluster.deploy([(bert, 8)])
        rate = ConstantRate(30.0) + FlashCrowd(start=1.0, duration=2.0,
                                               magnitude=2000.0)
        traffic = SyntheticTraffic(
            [TrafficClass("x", rate, list(cluster.instance_names))],
            seed=8)
        report = LoadGen(cluster, traffic,
                         LoadGenConfig(duration=6.0)).run()
        assert report.shed > 0
        assert report.metrics.shed == report.shed
        in_slo = sum(1 for r in report.metrics.records
                     if r.latency <= report.metrics.slo)
        assert report.metrics.goodput \
            == pytest.approx(in_slo / report.offered)
        assert cluster.auditor.check_quiesce() == []
