"""Tests for the keyed plan cache and its serving/cluster wiring."""

import pytest

from repro import fastpath
from repro.cluster import Cluster, ClusterConfig
from repro.core import DeepPlan
from repro.core.plan_cache import PlanCache, plan_cache_key, resolve_plan_cache
from repro.hw.machine import Machine
from repro.hw.specs import a5000x2, p3_8xlarge
from repro.models import build_model
from repro.serving import InferenceServer, PoissonWorkload, ServerConfig
from repro.simkit import Simulator


@pytest.fixture(scope="module")
def bert():
    return build_model("bert-base")


class TestResolvePlanCache:
    def test_default_follows_fastpath_switch(self):
        assert isinstance(resolve_plan_cache(None), PlanCache)
        with fastpath.forced(False):
            assert resolve_plan_cache(None) is None

    def test_explicit_arguments(self):
        assert resolve_plan_cache(False) is None
        assert isinstance(resolve_plan_cache(True), PlanCache)
        shared = PlanCache()
        assert resolve_plan_cache(shared) is shared


class TestPlanCacheHits:
    def test_repeat_plan_is_a_hit_and_the_same_object(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=True)
        first = planner.plan(bert, "pt+dha")
        again = planner.plan(bert, "pt+dha")
        assert again is first
        assert planner.plan_cache.stats() == {
            "hits": 1, "misses": 1, "entries": 1}

    def test_cached_plan_equals_uncached_plan(self, bert):
        cached = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=True)
        uncached = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=False)
        assert uncached.plan_cache is None
        for strategy in ("baseline", "pipeswitch", "dha", "pt+dha"):
            cached.plan(bert, strategy)  # populate
            assert cached.plan(bert, strategy) == uncached.plan(bert,
                                                                strategy)

    def test_distinct_requests_miss(self, bert, gpt2=None):
        planner = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=True)
        planner.plan(bert, "pt+dha")
        planner.plan(bert, "dha")  # different strategy
        planner.plan(bert, "pt+dha", batch_size=8)  # different batch
        planner.plan(build_model("gpt2"), "pt+dha")  # different model
        assert planner.plan_cache.hits == 0
        assert planner.plan_cache.misses == 4

    def test_shared_cache_across_planners(self, bert):
        shared = PlanCache()
        a = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=shared)
        b = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=shared)
        plan = a.plan(bert, "pt+dha")
        assert b.plan(bert, "pt+dha") is plan
        assert shared.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_calibration_and_machine_invalidate(self, bert):
        """Any planning determinant in the key must separate entries."""
        shared = PlanCache()
        DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=shared).plan(bert)
        DeepPlan(p3_8xlarge(), noise=0.01, seed=3,
                 plan_cache=shared).plan(bert)  # other calibration
        DeepPlan(a5000x2(), noise=0.0, plan_cache=shared).plan(bert)
        assert shared.hits == 0
        assert shared.misses == 3
        assert len(shared) == 3

    def test_clear_keeps_counters_and_drops_entries(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=True)
        planner.plan(bert)
        planner.plan_cache.clear()
        assert len(planner.plan_cache) == 0
        assert planner.plan_cache.misses == 1
        planner.plan(bert)  # re-plans after the clear
        assert planner.plan_cache.misses == 2

    def test_key_is_stable_for_equivalent_models(self, bert):
        key_a = plan_cache_key(bert, p3_8xlarge(), (10, 0.0, 0), "dha", 1, 1)
        key_b = plan_cache_key(build_model("bert-base"), p3_8xlarge(),
                               (10, 0.0, 0), "dha", 1, 1)
        assert key_a == key_b


class TestReportCounters:
    def test_serving_report_exposes_cache_counters(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=True)
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig())
        server.deploy([(bert, 4)])
        planner.plan(bert, server.config.strategy)  # same request: a hit
        workload = PoissonWorkload(list(server.instances), rate=50.0,
                                   num_requests=8, seed=5)
        report = server.run(workload.generate())
        assert report.plan_cache_misses >= 1
        assert report.plan_cache_hits >= 1
        assert report.summary()["plan_cache_hits"] == float(
            report.plan_cache_hits)

    def test_serving_report_counters_zero_without_cache(self, bert):
        planner = DeepPlan(p3_8xlarge(), noise=0.0, plan_cache=False)
        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, planner, ServerConfig())
        server.deploy([(bert, 2)])
        workload = PoissonWorkload(list(server.instances), rate=50.0,
                                   num_requests=4, seed=5)
        report = server.run(workload.generate())
        assert report.plan_cache_hits == 0
        assert report.plan_cache_misses == 0

    def test_cluster_report_exposes_cache_counters(self, bert):
        cluster = Cluster(p3_8xlarge(),
                          ClusterConfig(num_machines=2, replication=2))
        cluster.deploy([(bert, 4)])
        workload = PoissonWorkload(list(cluster.instance_names), rate=50.0,
                                   num_requests=8, seed=5)
        report = cluster.run(workload.generate())
        if cluster.planner.plan_cache is not None:
            assert report.plan_cache_misses >= 1
        summary = report.summary()
        assert summary["plan_cache_hits"] == float(report.plan_cache_hits)
        assert summary["plan_cache_misses"] == float(
            report.plan_cache_misses)
