"""Unit tests for pinned host memory accounting."""

import pytest

from repro.hw.host import HostMemory, OutOfHostMemoryError
from repro.units import GB


@pytest.fixture
def host():
    return HostMemory(capacity_bytes=100 * GB, headroom_bytes=10 * GB)


class TestHostMemory:
    def test_pin_and_unpin(self, host):
        host.pin("bert#0", 40 * GB)
        assert host.pinned_bytes == 40 * GB
        assert host.available_bytes == 50 * GB
        assert host.holds("bert#0")
        assert host.unpin("bert#0") == 40 * GB
        assert host.pinned_bytes == 0

    def test_headroom_reserved(self, host):
        assert host.available_bytes == 90 * GB

    def test_over_capacity_raises(self, host):
        host.pin("a", 80 * GB)
        with pytest.raises(OutOfHostMemoryError) as err:
            host.pin("b", 20 * GB)
        assert err.value.available == 10 * GB

    def test_duplicate_tag_rejected(self, host):
        host.pin("a", 1)
        with pytest.raises(ValueError):
            host.pin("a", 1)

    def test_unpin_unknown_raises(self, host):
        with pytest.raises(KeyError):
            host.unpin("ghost")

    def test_negative_pin_rejected(self, host):
        with pytest.raises(ValueError):
            host.pin("a", -1)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostMemory(0)
        with pytest.raises(ValueError):
            HostMemory(10, headroom_bytes=10)


class TestMachineIntegration:
    def test_machine_has_host_memory(self):
        from repro.hw.machine import Machine
        from repro.hw.specs import p3_8xlarge
        from repro.simkit import Simulator

        machine = Machine(Simulator(), p3_8xlarge())
        assert machine.host.capacity_bytes == 244 * GB

    def test_deploy_pins_host_memory(self):
        from repro.core import DeepPlan
        from repro.hw.machine import Machine
        from repro.hw.specs import p3_8xlarge
        from repro.models import build_model
        from repro.serving import InferenceServer
        from repro.simkit import Simulator

        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, DeepPlan(p3_8xlarge(), noise=0.0))
        model = build_model("bert-base")
        server.deploy([(model, 10)])
        assert machine.host.pinned_bytes == 10 * model.param_bytes

    def test_host_memory_bounds_deployment(self):
        """244 GB of host RAM cannot pin ~600 BERT-Base instances."""
        from repro.core import DeepPlan
        from repro.hw.machine import Machine
        from repro.hw.specs import p3_8xlarge
        from repro.models import build_model
        from repro.serving import InferenceServer
        from repro.simkit import Simulator

        machine = Machine(Simulator(), p3_8xlarge())
        server = InferenceServer(machine, DeepPlan(p3_8xlarge(), noise=0.0))
        with pytest.raises(OutOfHostMemoryError):
            server.deploy([(build_model("bert-base"), 600)])
