"""Setup shim: enables legacy editable installs where `wheel` is absent.

Mirrors pyproject.toml's entry point so `setup.py develop` (the offline
install path) also creates the `deepplan` console script.
"""
from setuptools import setup

setup(entry_points={"console_scripts": ["deepplan=repro.cli:main"]})
